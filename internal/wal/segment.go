package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"

	"repro/internal/vfs"
)

// On-disk layout. The log is a sequence of rotated segment files named
// {base}.{seq}.txnlog, each a fixed-size header block followed by 4 KB data
// blocks. Every data block is independently CRC-protected and records may
// span block boundaries (the continuation flag marks a block that begins
// mid-record), so a torn write at a segment tail invalidates exactly the
// blocks it tore and nothing before them. Each segment has a sidecar index
// {base}.{seq}.idx of fixed-size entries (LSN of the first record starting
// in a block → block number), binary-searchable so recovery can seek
// straight to the block holding the last checkpoint instead of scanning the
// segment from byte 0. A small anchor file {base}.ckpt records the LSN of
// the last durable checkpoint and the low-water segment sequence; segments
// below the low-water mark are dead and are deleted (or retained read-only
// when archival is configured) by checkpoint-driven truncation.
const (
	// BlockSize is the log block size: one file-system block, so a block
	// write is atomic on both the no-overwrite LFS and the in-place FFS.
	BlockSize = 4096
	// blockHdrSize is the per-block header: crc(4) flags(2) dataLen(2)
	// firstRec(2) reserved(6).
	blockHdrSize = 16
	// PayloadSize is the record bytes carried per block.
	PayloadSize = BlockSize - blockHdrSize

	// segMagic identifies a segment header block ("WSG1").
	segMagic = 0x31475357
	// anchorMagic identifies the checkpoint anchor file ("WCKP").
	anchorMagic = 0x504b4357
	// formatVersion is the segment/anchor format version.
	formatVersion = 1

	// flagContinuation marks a block whose first payload bytes continue a
	// record begun in the previous block.
	flagContinuation = 1 << 0

	// noFirstRec is the firstRec sentinel for a block that contains no
	// record start (pure continuation).
	noFirstRec = 0xFFFF

	// indexEntrySize is the fixed size of one index entry:
	// lsn(8) block(4) crc(4).
	indexEntrySize = 16

	// anchorSize is the serialized anchor: magic(4) ver(2) pad(2)
	// ckptLSN(8) lowWater(8) crc(4).
	anchorSize = 28
)

// LSN is a log sequence number: a (segment sequence, stream offset) pair
// packed into one ordered integer. The stream offset is the byte position of
// the record in the segment's logical payload stream (block payloads
// concatenated), so LSNs compare correctly across forces, rotations, and
// recovery.
type LSN int64

const lsnOffBits = 40 // 1 TiB per segment, ~8.3M segments

// makeLSN packs a segment sequence and payload-stream offset.
func makeLSN(seq uint64, off int64) LSN {
	return LSN(int64(seq)<<lsnOffBits | off)
}

// Segment returns the segment sequence number the LSN falls in.
func (l LSN) Segment() uint64 { return uint64(l) >> lsnOffBits }

// Offset returns the payload-stream offset within the segment.
func (l LSN) Offset() int64 { return int64(l) & (1<<lsnOffBits - 1) }

// String renders an LSN as seq:offset.
func (l LSN) String() string {
	return fmt.Sprintf("%d:%d", l.Segment(), l.Offset())
}

// File naming.

func segName(base string, seq uint64) string {
	return fmt.Sprintf("%s.%d.txnlog", base, seq)
}

func idxName(base string, seq uint64) string {
	return fmt.Sprintf("%s.%d.idx", base, seq)
}

func anchorName(base string) string { return base + ".ckpt" }

// parseSegName extracts the sequence number from a directory entry name if
// it matches {baseName}.{seq}.txnlog.
func parseSegName(baseName, entry string) (uint64, bool) {
	if !strings.HasPrefix(entry, baseName+".") || !strings.HasSuffix(entry, ".txnlog") {
		return 0, false
	}
	mid := entry[len(baseName)+1 : len(entry)-len(".txnlog")]
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// discoverSegments lists the existing segment sequence numbers for base, in
// ascending order, by reading the base's parent directory.
func discoverSegments(fsys vfs.FileSystem, base string) ([]uint64, error) {
	dirParts, baseName, ok := vfs.SplitDirBase(base)
	if !ok {
		return nil, fmt.Errorf("wal: malformed log base %q", base)
	}
	dir := "/" + strings.Join(dirParts, "/")
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range entries {
		if e.IsDir {
			continue
		}
		if seq, ok := parseSegName(baseName, e.Name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Segment header block.

func encodeSegHeader(seq uint64) []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], segMagic)
	le.PutUint16(b[4:], formatVersion)
	le.PutUint64(b[8:], seq)
	le.PutUint32(b[16:], BlockSize)
	le.PutUint32(b[20:], crc32.ChecksumIEEE(b[0:20]))
	return b
}

func decodeSegHeader(b []byte) (seq uint64, ok bool) {
	if len(b) < 24 {
		return 0, false
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != segMagic || le.Uint16(b[4:]) != formatVersion {
		return 0, false
	}
	if le.Uint32(b[16:]) != BlockSize {
		return 0, false
	}
	if le.Uint32(b[20:]) != crc32.ChecksumIEEE(b[0:20]) {
		return 0, false
	}
	return le.Uint64(b[8:]), true
}

// blockFileOff returns the file offset of data block n (block 0 is the
// first data block; the header occupies the file's first BlockSize bytes).
func blockFileOff(n int64) int64 { return BlockSize * (n + 1) }

// encodeBlock fills dst (BlockSize bytes) with a data block: header +
// payload + zero padding. firstRec is the payload offset of the first record
// starting in the block, or noFirstRec; cont marks a continuation block.
func encodeBlock(dst, payload []byte, firstRec int, cont bool) {
	le := binary.LittleEndian
	for i := range dst {
		dst[i] = 0
	}
	var flags uint16
	if cont {
		flags |= flagContinuation
	}
	le.PutUint16(dst[4:], flags)
	le.PutUint16(dst[6:], uint16(len(payload)))
	le.PutUint16(dst[8:], uint16(firstRec))
	copy(dst[blockHdrSize:], payload)
	le.PutUint32(dst[0:], crc32.ChecksumIEEE(dst[4:blockHdrSize+len(payload)]))
}

// blockInfo is a decoded data-block header.
type blockInfo struct {
	dataLen  int
	firstRec int // payload offset, or noFirstRec
	cont     bool
}

// decodeBlock validates a data block and returns its header. ok is false for
// a torn, corrupt, or never-written block — the durable stream ends at the
// previous block.
func decodeBlock(b []byte) (blockInfo, bool) {
	if len(b) < BlockSize {
		return blockInfo{}, false
	}
	le := binary.LittleEndian
	dataLen := int(le.Uint16(b[6:]))
	if dataLen == 0 || dataLen > PayloadSize {
		return blockInfo{}, false
	}
	if le.Uint32(b[0:]) != crc32.ChecksumIEEE(b[4:blockHdrSize+dataLen]) {
		return blockInfo{}, false
	}
	return blockInfo{
		dataLen:  dataLen,
		firstRec: int(le.Uint16(b[8:])),
		cont:     le.Uint16(b[4:])&flagContinuation != 0,
	}, true
}

// Index entries.

type indexEntry struct {
	lsn   LSN
	block int64
}

func encodeIndexEntry(dst []byte, e indexEntry) {
	le := binary.LittleEndian
	le.PutUint64(dst[0:], uint64(e.lsn))
	le.PutUint32(dst[8:], uint32(e.block))
	le.PutUint32(dst[12:], crc32.ChecksumIEEE(dst[0:12]))
}

func decodeIndexEntry(b []byte) (indexEntry, bool) {
	if len(b) < indexEntrySize {
		return indexEntry{}, false
	}
	le := binary.LittleEndian
	if le.Uint32(b[12:]) != crc32.ChecksumIEEE(b[0:12]) {
		return indexEntry{}, false
	}
	return indexEntry{lsn: LSN(le.Uint64(b[0:])), block: int64(le.Uint32(b[8:]))}, true
}

// readIndex loads and validates a segment's index file. Entries must be
// strictly increasing in both LSN and block and belong to segment seq; the
// scan stops at the first invalid entry (a torn index write). A missing or
// empty index is not an error — recovery falls back to scanning the segment.
func readIndex(fsys vfs.FileSystem, base string, seq uint64) []indexEntry {
	f, err := fsys.Open(idxName(base, seq))
	if err != nil {
		return nil
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil || size < indexEntrySize {
		return nil
	}
	raw := make([]byte, size)
	n, err := f.ReadAt(raw, 0)
	if err != nil {
		return nil
	}
	raw = raw[:n]
	var out []indexEntry
	for off := 0; off+indexEntrySize <= len(raw); off += indexEntrySize {
		e, ok := decodeIndexEntry(raw[off:])
		if !ok || e.lsn.Segment() != seq || e.block < 0 {
			break
		}
		if len(out) > 0 && (e.lsn <= out[len(out)-1].lsn || e.block <= out[len(out)-1].block) {
			break
		}
		out = append(out, e)
	}
	return out
}

// indexSeek returns the data block to start reading from to find target, and
// the stream offset of the first record starting there: the last entry with
// lsn <= target. ok is false when the index cannot help (empty, or target
// precedes the first entry) and the caller should scan from block 0.
func indexSeek(entries []indexEntry, target LSN) (indexEntry, bool) {
	lo, hi := 0, len(entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if entries[mid].lsn <= target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return indexEntry{}, false
	}
	return entries[lo-1], true
}

// Anchor file.

type anchor struct {
	ckptLSN  LSN
	lowWater uint64
}

func encodeAnchor(a anchor) []byte {
	b := make([]byte, anchorSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], anchorMagic)
	le.PutUint16(b[4:], formatVersion)
	le.PutUint64(b[8:], uint64(a.ckptLSN))
	le.PutUint64(b[16:], a.lowWater)
	le.PutUint32(b[24:], crc32.ChecksumIEEE(b[0:24]))
	return b
}

func decodeAnchor(b []byte) (anchor, bool) {
	if len(b) < anchorSize {
		return anchor{}, false
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != anchorMagic || le.Uint16(b[4:]) != formatVersion {
		return anchor{}, false
	}
	if le.Uint32(b[24:]) != crc32.ChecksumIEEE(b[0:24]) {
		return anchor{}, false
	}
	a := anchor{ckptLSN: LSN(le.Uint64(b[8:])), lowWater: le.Uint64(b[16:])}
	if a.lowWater == 0 {
		return anchor{}, false
	}
	return a, true
}
