package wal

import (
	"fmt"
	"testing"

	"repro/internal/vfs"
)

// The tests in this file pin the segmented log's hot path — AppendCommit,
// group-commit Force on the active segment, and index-entry emission — to
// zero steady-state allocations, backing the //simlint:noalloc annotations
// with a dynamic check. They run against an in-memory file system whose
// WriteAt never allocates (capacity is reserved up front), so the numbers
// isolate the WAL layer's own behaviour from the simulated disk that the
// other tests exercise.

// memFS is a minimal vfs.FileSystem for allocation tests only: flat
// namespace, no directories, Sync is a no-op.
type memFS struct {
	files map[string]*memFile
	next  uint64
}

func newMemFS() *memFS { return &memFS{files: map[string]*memFile{}} }

// memFileCap is reserved per file so steady-state WriteAt never grows the
// backing array. The tests write well under 1 MiB per file.
const memFileCap = 4 << 20

type memFile struct {
	id   vfs.FileID
	data []byte
}

func (fs *memFS) Name() string { return "memfs" }

func (fs *memFS) Create(path string) (vfs.File, error) {
	if _, ok := fs.files[path]; ok {
		return nil, fmt.Errorf("memfs: create %s: %w", path, vfs.ErrExist)
	}
	fs.next++
	f := &memFile{id: vfs.FileID(fs.next), data: make([]byte, 0, memFileCap)}
	fs.files[path] = f
	return f, nil
}

func (fs *memFS) Open(path string) (vfs.File, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: %w", path, vfs.ErrNotExist)
	}
	return f, nil
}

func (fs *memFS) Remove(path string) error {
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("memfs: remove %s: %w", path, vfs.ErrNotExist)
	}
	delete(fs.files, path)
	return nil
}

func (fs *memFS) Mkdir(string) error { return nil }

func (fs *memFS) ReadDir(string) ([]vfs.DirEntry, error) { return nil, nil }

func (fs *memFS) Stat(path string) (vfs.FileInfo, error) {
	f, ok := fs.files[path]
	if !ok {
		return vfs.FileInfo{}, fmt.Errorf("memfs: stat %s: %w", path, vfs.ErrNotExist)
	}
	return vfs.FileInfo{Name: path, ID: f.id, Size: int64(len(f.data))}, nil
}

func (fs *memFS) Rename(oldPath, newPath string) error {
	f, ok := fs.files[oldPath]
	if !ok {
		return fmt.Errorf("memfs: rename %s: %w", oldPath, vfs.ErrNotExist)
	}
	delete(fs.files, oldPath)
	fs.files[newPath] = f
	return nil
}

func (fs *memFS) Sync() error { return nil }

func (fs *memFS) BlockSize() int { return BlockSize }

func (f *memFile) ID() vfs.FileID { return f.id }

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, nil
	}
	return copy(p, f.data[off:]), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	if end := off + int64(len(p)); end > int64(len(f.data)) {
		if end <= int64(cap(f.data)) {
			f.data = f.data[:end]
		} else {
			f.data = append(f.data, make([]byte, end-int64(len(f.data)))...)
		}
	}
	return copy(f.data[off:], p), nil
}

func (f *memFile) Size() (int64, error) { return int64(len(f.data)), nil }

func (f *memFile) Truncate(size int64) error {
	if size <= int64(len(f.data)) {
		f.data = f.data[:size]
	}
	return nil
}

func (f *memFile) Sync() error { return nil }

func (f *memFile) Close() error { return nil }

// newAllocLog builds a Manager on the in-memory fs and pre-sizes every
// reusable buffer the hot path amortizes over (the per-segment payload
// stream, the record-start index, the block-compose scratch, and the
// index-entry scratch), so AllocsPerRun sees the steady state rather than
// the amortized doubling slope.
func newAllocLog(t *testing.T) *Manager {
	t.Helper()
	m, err := Create(newMemFS(), "/log", Options{})
	if err != nil {
		t.Fatal(err)
	}
	w := m.active()
	w.stream = make([]byte, 0, 1<<20)
	w.starts = make([]int64, 0, 1<<16)
	m.blockBuf = make([]byte, 0, 1<<20)
	m.idxBuf = make([]byte, 0, 1<<16)
	return m
}

// TestAppendCommitZeroAllocs pins the batched commit append: once the
// per-segment buffers are warm, AppendCommit encodes the record in place
// (no per-record buffer, no per-record CRC hasher) and allocates nothing.
func TestAppendCommitZeroAllocs(t *testing.T) {
	m := newAllocLog(t)
	var txn uint64
	allocs := testing.AllocsPerRun(200, func() {
		txn++
		if _, err := m.AppendCommit(txn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendCommit allocated %.2f allocs/op, want 0", allocs)
	}
}

// TestGroupCommitForceZeroAllocs pins the group-commit force on the active
// segment: compose the dirty block range into the reusable scratch, write,
// sync, emit index entries — all without allocating.
func TestGroupCommitForceZeroAllocs(t *testing.T) {
	m := newAllocLog(t)
	var txn uint64
	work := func() {
		txn++
		if _, err := m.AppendCommit(txn); err != nil {
			t.Fatal(err)
		}
		if err := m.Force(); err != nil {
			t.Fatal(err)
		}
	}
	work() // cold: creates the segment and index files
	before := m.Stats().Forces
	allocs := testing.AllocsPerRun(200, work)
	if allocs != 0 {
		t.Fatalf("AppendCommit+Force allocated %.2f allocs/op, want 0", allocs)
	}
	if got := m.Stats().Forces; got == before {
		t.Fatalf("Force never ran during measurement (forces stayed at %d)", got)
	}
}

// TestIndexEntryEmissionZeroAllocs drives each force across a block
// boundary so flushIndex emits entries on every run, and pins that path —
// encode into the reusable scratch, one WriteAt — to zero allocations.
func TestIndexEntryEmissionZeroAllocs(t *testing.T) {
	m := newAllocLog(t)
	// An update whose after-image nearly fills one block's payload makes
	// every append+force complete at least one block.
	after := make([]byte, PayloadSize-recFixed-64)
	var txn uint64
	work := func() {
		txn++
		if _, err := m.LogUpdate(txn, 1, int64(txn), 0, nil, after); err != nil {
			t.Fatal(err)
		}
		if err := m.Force(); err != nil {
			t.Fatal(err)
		}
	}
	work() // cold: segment creation and first block
	before := m.Stats().IndexEntries
	allocs := testing.AllocsPerRun(100, work)
	if allocs != 0 {
		t.Fatalf("index-entry emission allocated %.2f allocs/op, want 0", allocs)
	}
	if got := m.Stats().IndexEntries; got <= before {
		t.Fatalf("no index entries emitted during measurement (stuck at %d)", got)
	}
}
