package wal

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newFS(t *testing.T) vfs.FileSystem {
	t.Helper()
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fsys, err := lfs.Format(dev, clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fsys
}

func newLogOpts(t *testing.T, opts Options) (*Manager, vfs.FileSystem) {
	t.Helper()
	fsys := newFS(t)
	m, err := Create(fsys, "/log", opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, fsys
}

func newLog(t *testing.T) (*Manager, vfs.FileSystem) {
	t.Helper()
	return newLogOpts(t, Options{})
}

func TestAppendAndScan(t *testing.T) {
	m, _ := newLog(t)
	lsn1, err := m.LogUpdate(1, 10, 5, 100, []byte("old"), []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LogCommit(1); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("Scan = %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.LSN != lsn1 || r.Type != RecUpdate || r.Txn != 1 || r.File != 10 || r.Block != 5 ||
		r.Offset != 100 || string(r.Before) != "old" || string(r.After) != "new" {
		t.Fatalf("record = %+v", r)
	}
	if recs[1].Type != RecCommit {
		t.Fatalf("second record = %+v", recs[1])
	}
}

func TestLSNEncoding(t *testing.T) {
	l := makeLSN(7, 12345)
	if l.Segment() != 7 || l.Offset() != 12345 {
		t.Fatalf("lsn %v: segment=%d offset=%d", l, l.Segment(), l.Offset())
	}
	if makeLSN(1, 100) >= makeLSN(2, 0) {
		t.Fatal("LSNs must order across segments")
	}
	if makeLSN(3, 5) >= makeLSN(3, 6) {
		t.Fatal("LSNs must order within a segment")
	}
}

func TestCommitForcesLog(t *testing.T) {
	m, _ := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("a"), []byte("b"))
	if m.FlushedTo() != makeLSN(1, 0) {
		t.Fatal("update alone should not force")
	}
	_, durable, err := m.LogCommit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !durable {
		t.Fatal("default batch=1 commit must be durable")
	}
	if m.FlushedTo() != m.End() {
		t.Fatal("commit should force the whole log")
	}
}

func TestGroupCommitBatches(t *testing.T) {
	m, _ := newLog(t)
	m.SetGroupCommit(3)
	var durables []bool
	for txn := uint64(1); txn <= 3; txn++ {
		m.LogUpdate(txn, 1, 0, 0, []byte("x"), []byte("y"))
		_, d, err := m.LogCommit(txn)
		if err != nil {
			t.Fatal(err)
		}
		durables = append(durables, d)
	}
	if durables[0] || durables[1] || !durables[2] {
		t.Fatalf("durability pattern = %v, want [false false true]", durables)
	}
	st := m.Stats()
	if st.Forces != 1 {
		t.Fatalf("Forces = %d, want 1 (amortized)", st.Forces)
	}
	if st.GroupCommits != 2 {
		t.Fatalf("GroupCommits = %d, want 2", st.GroupCommits)
	}
}

func TestReopenFindsEnd(t *testing.T) {
	m, fsys := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("a"), []byte("b"))
	m.LogCommit(1)
	end := m.End()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(fsys, "/log", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.End() != end {
		t.Fatalf("reopened end = %v, want %v", m2.End(), end)
	}
	// Appending after reopen works.
	m2.LogUpdate(2, 1, 0, 0, []byte("c"), []byte("d"))
	if _, _, err := m2.LogCommit(2); err != nil {
		t.Fatal(err)
	}
	recs, _ := m2.Scan()
	if len(recs) != 4 {
		t.Fatalf("%d records after reopen, want 4", len(recs))
	}
}

func TestTornTailIgnored(t *testing.T) {
	m, fsys := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("good"), []byte("good"))
	m.LogCommit(1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: a garbage block appended to the segment file.
	f, err := fsys.Open("/log.1.txnlog")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	garbage := make([]byte, BlockSize)
	for i := range garbage {
		garbage[i] = 0xde
	}
	f.WriteAt(garbage, sz)
	f.Sync()
	f.Close()
	m2, err := Open(fsys, "/log", Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := m2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2 (torn tail dropped)", len(recs))
	}
}

// page is a toy page store for recovery tests.
type pageStore map[[2]int64][]byte

func (p pageStore) apply(file uint64, block int64, offset uint32, data []byte) error {
	key := [2]int64{int64(file), block}
	pg, ok := p[key]
	if !ok {
		pg = make([]byte, 4096)
		p[key] = pg
	}
	copy(pg[offset:], data)
	return nil
}

func TestRecoverRedoWinners(t *testing.T) {
	m, _ := newLog(t)
	m.LogUpdate(1, 7, 0, 10, []byte("AAAA"), []byte("BBBB"))
	m.LogCommit(1)
	store := pageStore{}
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || l != 0 {
		t.Fatalf("winners=%d losers=%d", w, l)
	}
	if got := store[[2]int64{7, 0}][10:14]; !bytes.Equal(got, []byte("BBBB")) {
		t.Fatalf("page = %q, want BBBB", got)
	}
}

func TestRecoverUndoLosers(t *testing.T) {
	m, _ := newLog(t)
	// Winner then loser on the same bytes.
	m.LogUpdate(1, 7, 0, 10, []byte("AAAA"), []byte("BBBB"))
	m.LogCommit(1)
	m.LogUpdate(2, 7, 0, 10, []byte("BBBB"), []byte("CCCC"))
	m.Force() // loser's update reached the log but no commit
	store := pageStore{}
	// Simulate the page on disk containing the loser's change.
	store.apply(7, 0, 10, []byte("CCCC"))
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || l != 1 {
		t.Fatalf("winners=%d losers=%d", w, l)
	}
	if got := store[[2]int64{7, 0}][10:14]; !bytes.Equal(got, []byte("BBBB")) {
		t.Fatalf("page = %q, want BBBB (loser undone)", got)
	}
}

func TestRecoverMultiTxnInterleaved(t *testing.T) {
	m, _ := newLog(t)
	// T1 and T2 interleave on different offsets of one page; T1 commits.
	m.LogUpdate(1, 3, 2, 0, []byte("xxxx"), []byte("T1AA"))
	m.LogUpdate(2, 3, 2, 8, []byte("yyyy"), []byte("T2BB"))
	m.LogUpdate(1, 3, 2, 4, []byte("zzzz"), []byte("T1CC"))
	m.LogCommit(1)
	store := pageStore{}
	store.apply(3, 2, 0, []byte("T1AAT1CCT2BB")) // crash state: both applied
	if _, _, err := m.Recover(store.apply); err != nil {
		t.Fatal(err)
	}
	pg := store[[2]int64{3, 2}]
	if !bytes.Equal(pg[0:4], []byte("T1AA")) || !bytes.Equal(pg[4:8], []byte("T1CC")) {
		t.Fatalf("winner bytes wrong: %q", pg[:12])
	}
	if !bytes.Equal(pg[8:12], []byte("yyyy")) {
		t.Fatalf("loser bytes not undone: %q", pg[8:12])
	}
}

func TestAbortedTxnUndoneAtRecovery(t *testing.T) {
	// The transaction layer logs a compensation update (restoring the
	// before-image) ahead of the abort record; recovery replays the whole
	// sequence forward.
	m, _ := newLog(t)
	m.LogUpdate(5, 1, 0, 0, []byte("OLD!"), []byte("NEW!"))
	m.LogUpdate(5, 1, 0, 0, []byte("NEW!"), []byte("OLD!")) // compensation
	m.LogAbort(5)
	m.Force()
	store := pageStore{}
	store.apply(1, 0, 0, []byte("NEW!")) // page escaped to disk pre-abort
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 || l != 1 {
		t.Fatalf("winners=%d losers=%d", w, l)
	}
	if got := store[[2]int64{1, 0}][:4]; !bytes.Equal(got, []byte("OLD!")) {
		t.Fatalf("aborted txn not undone: %q", got)
	}
}

func TestAbortDoesNotClobberLaterCommit(t *testing.T) {
	// T3 updates X and aborts (with compensation); T4 then commits a new
	// value for X. Recovery must leave T4's value in place — the scenario
	// that breaks naive reverse-undo of aborted transactions.
	m, _ := newLog(t)
	m.LogUpdate(3, 1, 0, 0, []byte("0000"), []byte("3333"))
	m.LogUpdate(3, 1, 0, 0, []byte("3333"), []byte("0000")) // compensation
	m.LogAbort(3)
	m.LogUpdate(4, 1, 0, 0, []byte("0000"), []byte("4444"))
	m.LogCommit(4)
	store := pageStore{}
	store.apply(1, 0, 0, []byte("4444"))
	if _, _, err := m.Recover(store.apply); err != nil {
		t.Fatal(err)
	}
	if got := store[[2]int64{1, 0}][:4]; !bytes.Equal(got, []byte("4444")) {
		t.Fatalf("committed value clobbered: %q", got)
	}
}

func TestCheckpointBoundsScan(t *testing.T) {
	m, _ := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("a"), []byte("b"))
	m.LogCommit(1)
	if _, err := m.LogCheckpoint(); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("after checkpoint: %d records (want just the checkpoint), first %+v", len(recs), recs[0])
	}
	// The log keeps working after a checkpoint.
	m.LogUpdate(2, 1, 0, 0, []byte("c"), []byte("d"))
	m.LogCommit(2)
	recs, _ = m.Scan()
	if len(recs) != 3 {
		t.Fatalf("after checkpoint+append: %d records, want 3", len(recs))
	}
}

func TestCheckpointRecord(t *testing.T) {
	m, _ := newLog(t)
	lsn, err := m.LogCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if m.CheckpointLSN() != lsn {
		t.Fatalf("CheckpointLSN = %v, want %v", m.CheckpointLSN(), lsn)
	}
	recs, _ := m.Scan()
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("recs = %+v", recs)
	}
	if recs[0].File != m.LowWater() {
		t.Fatalf("checkpoint record low-water = %d, want %d", recs[0].File, m.LowWater())
	}
}

func TestClosedLogRejects(t *testing.T) {
	m, _ := newLog(t)
	m.Close()
	if _, err := m.LogUpdate(1, 1, 0, 0, nil, nil); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if _, _, err := m.LogCommit(1); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestBytesLoggedReflectsDeltaSize(t *testing.T) {
	// The point of §4.3's comparison: WAL logs only the changed bytes,
	// while the embedded system flushes whole pages at commit.
	m, _ := newLog(t)
	small := []byte("ab")
	m.LogUpdate(1, 1, 0, 0, small, small)
	m.LogCommit(1)
	st := m.Stats()
	if st.BytesLogged > 200 {
		t.Fatalf("BytesLogged = %d; delta logging should be tiny", st.BytesLogged)
	}
}

// Property: any sequence of logged records scans back exactly, and recovery
// of a fully-committed history is idempotent (applying it twice gives the
// same pages).
func TestLogRoundTripProperty(t *testing.T) {
	prop := func(ops []struct {
		Txn    uint8
		Block  uint8
		Off    uint8
		Commit bool
	}) bool {
		// A tiny segment threshold makes even short op sequences rotate, so
		// the property covers record placement across segment boundaries.
		m, _ := newLogOpts(t, Options{SegmentBytes: 160})
		var expected []Record
		for _, op := range ops {
			if op.Commit {
				if _, _, err := m.LogCommit(uint64(op.Txn)); err != nil {
					return false
				}
				expected = append(expected, Record{Type: RecCommit, Txn: uint64(op.Txn)})
			} else {
				before := []byte{op.Block, op.Off}
				after := []byte{op.Off, op.Block}
				if _, err := m.LogUpdate(uint64(op.Txn), 1, int64(op.Block), uint32(op.Off), before, after); err != nil {
					return false
				}
				expected = append(expected, Record{Type: RecUpdate, Txn: uint64(op.Txn), Block: int64(op.Block), Offset: uint32(op.Off)})
			}
		}
		if err := m.Force(); err != nil {
			return false
		}
		recs, err := m.Scan()
		if err != nil || len(recs) != len(expected) {
			return false
		}
		for i, want := range expected {
			got := recs[i]
			if got.Type != want.Type || got.Txn != want.Txn {
				return false
			}
			if want.Type == RecUpdate && (got.Block != want.Block || got.Offset != want.Offset) {
				return false
			}
		}
		// Recovery idempotence.
		s1, s2 := pageStore{}, pageStore{}
		if _, _, err := m.Recover(s1.apply); err != nil {
			return false
		}
		if _, _, err := m.Recover(s2.apply); err != nil {
			return false
		}
		if _, _, err := m.Recover(s2.apply); err != nil { // twice
			return false
		}
		if len(s1) != len(s2) {
			return false
		}
		for k, v := range s1 {
			if !bytes.Equal(s2[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverDeterministic(t *testing.T) {
	// Recovery must be a pure function of the log: two runs over the same
	// records produce identical apply traces, identical page state, and
	// identical winner/loser counts. A committed winner, an aborted
	// transaction with a compensating after-image, and an in-flight loser
	// exercise all three classification paths.
	m, _ := newLog(t)
	m.LogUpdate(1, 7, 0, 0, []byte("aaaa"), []byte("wwww"))
	m.LogCommit(1)
	m.LogUpdate(2, 7, 1, 8, []byte("bbbb"), []byte("cccc"))
	m.LogAbort(2)
	m.LogUpdate(3, 8, 2, 16, []byte("dddd"), []byte("eeee"))
	m.LogUpdate(3, 7, 0, 4, []byte("ffff"), []byte("gggg"))
	m.Force() // txn 3 never resolves: in-flight loser

	type applied struct {
		File   uint64
		Block  int64
		Offset uint32
		Data   string
	}
	run := func() ([]applied, pageStore, int, int) {
		var trace []applied
		store := pageStore{}
		w, l, err := m.Recover(func(file uint64, block int64, offset uint32, data []byte) error {
			trace = append(trace, applied{file, block, offset, string(data)})
			return store.apply(file, block, offset, data)
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace, store, w, l
	}
	trace1, store1, w1, l1 := run()
	trace2, store2, w2, l2 := run()
	if w1 != 1 || l1 != 2 {
		t.Fatalf("winners=%d losers=%d, want 1 and 2", w1, l1)
	}
	if w1 != w2 || l1 != l2 {
		t.Fatalf("counts diverged across runs: (%d,%d) vs (%d,%d)", w1, l1, w2, l2)
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("apply traces diverged:\nrun1: %v\nrun2: %v", trace1, trace2)
	}
	if !reflect.DeepEqual(store1, store2) {
		t.Fatal("post-recovery page state diverged between identical runs")
	}
}

// TestTornSpanningRecordTruncatedOnOpen forces a record that spans several
// blocks, then destroys the blocks holding its tail — as a torn multi-block
// force would — and checks that Open stops at the last whole record and
// physically truncates the torn bytes, so later appends start from a clean
// tail.
func TestTornSpanningRecordTruncatedOnOpen(t *testing.T) {
	m, fsys := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("good"), []byte("good"))
	m.LogCommit(1)
	intactEnd := m.End()
	// A record big enough to span blocks: before+after ≈ 2.5 blocks.
	big := make([]byte, 5*PayloadSize/4)
	for i := range big {
		big[i] = byte(i)
	}
	m.LogUpdate(9, 1, 3, 0, big, big)
	m.Force()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the force: clobber every data block after the first.
	f, err := fsys.Open("/log.1.txnlog")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	garbage := make([]byte, sz-2*BlockSize)
	f.WriteAt(garbage, 2*BlockSize)
	f.Sync()
	f.Close()

	m2, err := Open(fsys, "/log", Options{})
	if err != nil {
		t.Fatalf("open with torn tail must not fail: %v", err)
	}
	if m2.End() != intactEnd {
		t.Fatalf("end = %v, want %v (torn record dropped)", m2.End(), intactEnd)
	}
	f2, err := fsys.Open("/log.1.txnlog")
	if err != nil {
		t.Fatal(err)
	}
	wantSize := blockFileOff((intactEnd.Offset()-1)/PayloadSize) + BlockSize
	if sz, _ := f2.Size(); sz != wantSize {
		t.Fatalf("file size %d after open, want %d (torn tail truncated)", sz, wantSize)
	}
	f2.Close()
	// Recovery over the truncated log sees exactly the intact transaction.
	store := pageStore{}
	winners, losers, err := m2.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if winners != 1 || losers != 0 {
		t.Fatalf("winners=%d losers=%d, want 1/0", winners, losers)
	}
	// And appending after the truncation works.
	m2.LogUpdate(2, 1, 0, 0, []byte("c"), []byte("d"))
	if _, _, err := m2.LogCommit(2); err != nil {
		t.Fatal(err)
	}
	if recs, _ := m2.Scan(); len(recs) != 4 {
		t.Fatalf("%d records after append, want 4", len(recs))
	}
}

func TestRotationAcrossSegments(t *testing.T) {
	m, fsys := newLogOpts(t, Options{SegmentBytes: 300})
	const n = 40
	for txn := uint64(1); txn <= n; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bbbb"), []byte("aaaa"))
		if _, _, err := m.LogCommit(txn); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected rotations with a 300-byte threshold: %+v", st)
	}
	recs, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2*n {
		t.Fatalf("scan across segments = %d records, want %d", len(recs), 2*n)
	}
	// LSNs strictly increase, crossing segment sequences.
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatalf("LSNs not increasing: %v then %v", recs[i-1].LSN, recs[i].LSN)
		}
	}
	if first, last := recs[0].LSN.Segment(), recs[len(recs)-1].LSN.Segment(); last <= first {
		t.Fatalf("expected records in multiple segments, got %d..%d", first, last)
	}
	// Sealed segment files exist on disk.
	if _, err := fsys.Stat(segName("/log", 1)); err != nil {
		t.Fatalf("segment 1 missing: %v", err)
	}
	// Recovery across the whole multi-segment log sees every winner.
	store := pageStore{}
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != n || l != 0 {
		t.Fatalf("winners=%d losers=%d, want %d/0", w, l, n)
	}
}

func TestCheckpointTruncatesDeadSegments(t *testing.T) {
	m, fsys := newLogOpts(t, Options{SegmentBytes: 300})
	for txn := uint64(1); txn <= 30; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bbbb"), []byte("aaaa"))
		m.LogCommit(txn)
	}
	low := m.LowWater()
	if low != 1 {
		t.Fatalf("low water before checkpoint = %d, want 1", low)
	}
	if _, err := m.LogCheckpoint(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if m.LowWater() <= low {
		t.Fatal("checkpoint did not advance the low-water mark")
	}
	if st.SegmentsDeleted == 0 {
		t.Fatalf("checkpoint did not delete dead segments: %+v", st)
	}
	for seq := uint64(1); seq < m.LowWater(); seq++ {
		if _, err := fsys.Stat(segName("/log", seq)); err == nil {
			t.Fatalf("dead segment %d still exists", seq)
		}
		if _, err := fsys.Stat(idxName("/log", seq)); err == nil {
			t.Fatalf("dead index %d still exists", seq)
		}
	}
	// The live tail still scans.
	recs, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("post-truncation scan = %d records", len(recs))
	}
}

func TestRetainArchivesDeadSegments(t *testing.T) {
	m, fsys := newLogOpts(t, Options{SegmentBytes: 300, Retain: true})
	for txn := uint64(1); txn <= 30; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bbbb"), []byte("aaaa"))
		m.LogCommit(txn)
	}
	if _, err := m.LogCheckpoint(); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.SegmentsArchived == 0 || st.SegmentsDeleted != 0 {
		t.Fatalf("retain should archive, not delete: %+v", st)
	}
	for seq := uint64(1); seq < m.LowWater(); seq++ {
		if _, err := fsys.Stat(segName("/log", seq)); err != nil {
			t.Fatalf("archived segment %d missing: %v", seq, err)
		}
	}
	// Archives survive a reopen too (Open must not garbage-collect them).
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(fsys, "/log", Options{Retain: true})
	if err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq < m2.LowWater(); seq++ {
		if _, err := fsys.Stat(segName("/log", seq)); err != nil {
			t.Fatalf("archived segment %d lost at reopen: %v", seq, err)
		}
	}
}

// TestBoundedRecoveryScan is the acceptance test for bounded recovery: after
// a checkpoint followed by more traffic and a reopen, the recovery scan
// starts at the checkpoint — reading only segments at or after its low-water
// mark — not at the beginning of history.
func TestBoundedRecoveryScan(t *testing.T) {
	m, fsys := newLogOpts(t, Options{SegmentBytes: 300})
	for txn := uint64(1); txn <= 30; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bbbb"), []byte("aaaa"))
		m.LogCommit(txn)
	}
	if _, err := m.LogCheckpoint(); err != nil {
		t.Fatal(err)
	}
	ckpt := m.CheckpointLSN()
	totalSegs := m.stats.Segments
	for txn := uint64(31); txn <= 36; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bbbb"), []byte("aaaa"))
		m.LogCommit(txn)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(fsys, "/log", Options{SegmentBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	store := pageStore{}
	w, _, err := m2.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 6 {
		t.Fatalf("winners = %d, want 6 (post-checkpoint only)", w)
	}
	scan := m2.LastScanStats()
	if scan.StartLSN != ckpt {
		t.Fatalf("scan started at %v, want the checkpoint %v", scan.StartLSN, ckpt)
	}
	if scan.StartLSN.Segment() < m2.LowWater() {
		t.Fatalf("scan start segment %d below low water %d", scan.StartLSN.Segment(), m2.LowWater())
	}
	liveSegs := int64(m2.active().seq - ckpt.Segment() + 1)
	if scan.Segments > liveSegs {
		t.Fatalf("scan touched %d segments, live tail is only %d", scan.Segments, liveSegs)
	}
	if scan.Segments >= totalSegs {
		t.Fatalf("scan touched %d segments — not bounded (history had %d)", scan.Segments, totalSegs)
	}
}

// TestIndexSeekSkipsBlocks checks that recovery over a sealed segment uses
// its index to seek to the checkpoint's block instead of scanning the
// segment from block 0.
func TestIndexSeekSkipsBlocks(t *testing.T) {
	// Large records so the checkpoint lands several blocks into a segment,
	// and a segment holds many blocks.
	m, fsys := newLogOpts(t, Options{SegmentBytes: 16 * PayloadSize})
	big := make([]byte, PayloadSize/2)
	for txn := uint64(1); txn <= 8; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, big, big)
		m.LogCommit(txn)
	}
	if _, err := m.LogCheckpoint(); err != nil {
		t.Fatal(err)
	}
	ckpt := m.CheckpointLSN()
	if ckpt.Offset() == 0 {
		t.Fatal("test needs a checkpoint mid-segment")
	}
	// Roll past the checkpoint's segment so it seals (indexes are synced at
	// seal, and only sealed segments are index-seeked).
	for txn := uint64(9); txn <= 40; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, big, big)
		m.LogCommit(txn)
	}
	if m.active().seq == ckpt.Segment() {
		t.Fatal("test needs the checkpoint segment sealed")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, err := Open(fsys, "/log", Options{SegmentBytes: 16 * PayloadSize})
	if err != nil {
		t.Fatal(err)
	}
	store := pageStore{}
	if _, _, err := m2.Recover(store.apply); err != nil {
		t.Fatal(err)
	}
	scan := m2.LastScanStats()
	if scan.IndexSeeks == 0 {
		t.Fatalf("recovery did not use the index: %+v", scan)
	}
	// The seek must actually skip the pre-checkpoint blocks: the first
	// segment has ckpt.Offset()/PayloadSize blocks before the target.
	skippable := ckpt.Offset() / PayloadSize
	full := int64(0)
	for seq := ckpt.Segment(); seq <= m2.active().seq; seq++ {
		full += 16 // up to 16 payload blocks per segment at this threshold
	}
	if skippable > 1 && scan.Blocks > full-skippable+1 {
		t.Fatalf("scan read %d blocks; expected the index to skip ~%d", scan.Blocks, skippable)
	}
}

// TestGroupCommitAcrossRotation exercises the mid-batch rotation case: a
// batch of AppendCommit records straddles a segment boundary, and the single
// Force that commits the batch must make both segments durable, in order.
func TestGroupCommitAcrossRotation(t *testing.T) {
	m, fsys := newLogOpts(t, Options{SegmentBytes: 200})
	const n = 12
	for txn := uint64(1); txn <= n; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bb"), []byte("aa"))
		if _, err := m.AppendCommit(txn); err != nil {
			t.Fatal(err)
		}
		if txn > 1 {
			m.NoteAbsorbed()
		}
	}
	if len(m.writers) < 2 {
		t.Fatalf("batch did not straddle a rotation (writers=%d); shrink SegmentBytes", len(m.writers))
	}
	if err := m.Force(); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Forces; got != 1 {
		t.Fatalf("Forces = %d, want 1 for the whole batch", got)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Every commit in the batch is durable and ordered after reopen.
	m2, err := Open(fsys, "/log", Options{SegmentBytes: 200})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := m2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	var commits []uint64
	for _, r := range recs {
		if r.Type == RecCommit {
			commits = append(commits, r.Txn)
		}
	}
	if len(commits) != n {
		t.Fatalf("%d durable commits after mid-batch rotation, want %d", len(commits), n)
	}
	for i, txn := range commits {
		if txn != uint64(i+1) {
			t.Fatalf("commit order broken: %v", commits)
		}
	}
}

// TestTwoRunByteIdenticalMultiSegment runs an identical multi-segment
// workload (with mid-batch rotations) twice on fresh file systems, crashes
// into recovery, and requires byte-identical segment files, identical apply
// traces, and identical scan stats — the determinism contract for the
// segmented log.
func TestTwoRunByteIdenticalMultiSegment(t *testing.T) {
	type applied struct {
		File   uint64
		Block  int64
		Offset uint32
		Data   string
	}
	run := func() (map[string][]byte, []applied, ScanStats) {
		fsys := newFS(t)
		m, err := Create(fsys, "/log", Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		for txn := uint64(1); txn <= 25; txn++ {
			m.LogUpdate(txn, 1, int64(txn%5), uint32(txn%7), []byte("bbbb"), []byte("aaaa"))
			if _, err := m.AppendCommit(txn); err != nil {
				t.Fatal(err)
			}
			if txn%4 == 0 { // group-commit style batched forces across rotations
				if err := m.Force(); err != nil {
					t.Fatal(err)
				}
			}
			if txn == 12 {
				if _, err := m.LogCheckpoint(); err != nil {
					t.Fatal(err)
				}
			}
		}
		m.Force()
		// Crash: no Close. Reopen and recover.
		m2, err := Open(fsys, "/log", Options{SegmentBytes: 256})
		if err != nil {
			t.Fatal(err)
		}
		var trace []applied
		if _, _, err := m2.Recover(func(file uint64, block int64, offset uint32, data []byte) error {
			trace = append(trace, applied{file, block, offset, string(data)})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		scan := m2.LastScanStats()
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		seqs, err := discoverSegments(fsys, "/log")
		if err != nil {
			t.Fatal(err)
		}
		for _, seq := range seqs {
			for _, name := range []string{segName("/log", seq), idxName("/log", seq)} {
				f, err := fsys.Open(name)
				if err != nil {
					t.Fatal(err)
				}
				sz, _ := f.Size()
				raw := make([]byte, sz)
				f.ReadAt(raw, 0)
				f.Close()
				files[name] = raw
			}
		}
		return files, trace, scan
	}

	files1, trace1, scan1 := run()
	files2, trace2, scan2 := run()
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatal("recovery apply traces diverged between identical runs")
	}
	if scan1 != scan2 {
		t.Fatalf("scan stats diverged: %+v vs %+v", scan1, scan2)
	}
	if len(files1) == 0 || len(files1) != len(files2) {
		t.Fatalf("segment file sets differ: %d vs %d", len(files1), len(files2))
	}
	for name, raw := range files1 {
		if !bytes.Equal(raw, files2[name]) {
			t.Fatalf("segment file %s not byte-identical between runs", name)
		}
	}
}

func TestDumpReadableOnCleanAndTornLogs(t *testing.T) {
	m, fsys := newLogOpts(t, Options{SegmentBytes: 300})
	for txn := uint64(1); txn <= 10; txn++ {
		m.LogUpdate(txn, 1, int64(txn), 0, []byte("bbbb"), []byte("aaaa"))
		m.LogCommit(txn)
	}
	m.LogCheckpoint()
	m.LogUpdate(11, 1, 11, 0, []byte("bbbb"), []byte("aaaa"))
	m.LogCommit(11)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := Dump(&b, fsys, "/log"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"anchor", "segment", "block", "index", "commit", "ckpt", "low-water"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump output missing %q:\n%s", want, out)
		}
	}
	// Tear the active segment and dump again: must report, not fail.
	seqs, _ := discoverSegments(fsys, "/log")
	f, err := fsys.Open(segName("/log", seqs[len(seqs)-1]))
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	f.WriteAt(make([]byte, BlockSize), sz)
	f.Sync()
	f.Close()
	b.Reset()
	if err := Dump(&b, fsys, "/log"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "BAD CRC") {
		t.Fatal("dump did not flag the torn block")
	}
}

func TestScanStatsAccountsBlocks(t *testing.T) {
	m, _ := newLog(t)
	big := make([]byte, 3*PayloadSize/2)
	m.LogUpdate(1, 1, 0, 0, big, big) // spans several blocks
	m.LogCommit(1)
	if _, err := m.Scan(); err != nil {
		t.Fatal(err)
	}
	scan := m.LastScanStats()
	if scan.Records != 2 || scan.Blocks < 3 || scan.Bytes == 0 {
		t.Fatalf("scan stats = %+v", scan)
	}
}
