package wal

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newLog(t *testing.T) (*Manager, vfs.FileSystem) {
	t.Helper()
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fsys, err := lfs.Format(dev, clk, lfs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Create(fsys, "/log")
	if err != nil {
		t.Fatal(err)
	}
	return m, fsys
}

func TestAppendAndScan(t *testing.T) {
	m, _ := newLog(t)
	lsn1, err := m.LogUpdate(1, 10, 5, 100, []byte("old"), []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.LogCommit(1); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("Scan = %d records, want 2", len(recs))
	}
	r := recs[0]
	if r.LSN != lsn1 || r.Type != RecUpdate || r.Txn != 1 || r.File != 10 || r.Block != 5 ||
		r.Offset != 100 || string(r.Before) != "old" || string(r.After) != "new" {
		t.Fatalf("record = %+v", r)
	}
	if recs[1].Type != RecCommit {
		t.Fatalf("second record = %+v", recs[1])
	}
}

func TestCommitForcesLog(t *testing.T) {
	m, _ := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("a"), []byte("b"))
	if m.FlushedTo() != headerSize {
		t.Fatal("update alone should not force")
	}
	_, durable, err := m.LogCommit(1)
	if err != nil {
		t.Fatal(err)
	}
	if !durable {
		t.Fatal("default batch=1 commit must be durable")
	}
	if m.FlushedTo() != m.End() {
		t.Fatal("commit should force the whole log")
	}
}

func TestGroupCommitBatches(t *testing.T) {
	m, _ := newLog(t)
	m.SetGroupCommit(3)
	var durables []bool
	for txn := uint64(1); txn <= 3; txn++ {
		m.LogUpdate(txn, 1, 0, 0, []byte("x"), []byte("y"))
		_, d, err := m.LogCommit(txn)
		if err != nil {
			t.Fatal(err)
		}
		durables = append(durables, d)
	}
	if durables[0] || durables[1] || !durables[2] {
		t.Fatalf("durability pattern = %v, want [false false true]", durables)
	}
	st := m.Stats()
	if st.Forces != 1 {
		t.Fatalf("Forces = %d, want 1 (amortized)", st.Forces)
	}
	if st.GroupCommits != 2 {
		t.Fatalf("GroupCommits = %d, want 2", st.GroupCommits)
	}
}

func TestReopenFindsEnd(t *testing.T) {
	m, fsys := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("a"), []byte("b"))
	m.LogCommit(1)
	end := m.End()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := Open(fsys, "/log")
	if err != nil {
		t.Fatal(err)
	}
	if m2.End() != end {
		t.Fatalf("reopened end = %d, want %d", m2.End(), end)
	}
	// Appending after reopen works.
	m2.LogUpdate(2, 1, 0, 0, []byte("c"), []byte("d"))
	if _, _, err := m2.LogCommit(2); err != nil {
		t.Fatal(err)
	}
	recs, _ := m2.Scan()
	if len(recs) != 4 {
		t.Fatalf("%d records after reopen, want 4", len(recs))
	}
}

func TestTornTailIgnored(t *testing.T) {
	m, fsys := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("good"), []byte("good"))
	m.LogCommit(1)
	// Simulate a torn write: garbage appended directly to the file.
	f, err := fsys.Open("/log")
	if err != nil {
		t.Fatal(err)
	}
	sz, _ := f.Size()
	f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef, 1, 2, 3}, sz)
	f.Sync()
	f.Close()
	m2, err := Open(fsys, "/log")
	if err != nil {
		t.Fatal(err)
	}
	recs, err := m2.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2 (torn tail dropped)", len(recs))
	}
}

// page is a toy page store for recovery tests.
type pageStore map[[2]int64][]byte

func (p pageStore) apply(file uint64, block int64, offset uint32, data []byte) error {
	key := [2]int64{int64(file), block}
	pg, ok := p[key]
	if !ok {
		pg = make([]byte, 4096)
		p[key] = pg
	}
	copy(pg[offset:], data)
	return nil
}

func TestRecoverRedoWinners(t *testing.T) {
	m, _ := newLog(t)
	m.LogUpdate(1, 7, 0, 10, []byte("AAAA"), []byte("BBBB"))
	m.LogCommit(1)
	store := pageStore{}
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || l != 0 {
		t.Fatalf("winners=%d losers=%d", w, l)
	}
	if got := store[[2]int64{7, 0}][10:14]; !bytes.Equal(got, []byte("BBBB")) {
		t.Fatalf("page = %q, want BBBB", got)
	}
}

func TestRecoverUndoLosers(t *testing.T) {
	m, _ := newLog(t)
	// Winner then loser on the same bytes.
	m.LogUpdate(1, 7, 0, 10, []byte("AAAA"), []byte("BBBB"))
	m.LogCommit(1)
	m.LogUpdate(2, 7, 0, 10, []byte("BBBB"), []byte("CCCC"))
	m.Force() // loser's update reached the log but no commit
	store := pageStore{}
	// Simulate the page on disk containing the loser's change.
	store.apply(7, 0, 10, []byte("CCCC"))
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 1 || l != 1 {
		t.Fatalf("winners=%d losers=%d", w, l)
	}
	if got := store[[2]int64{7, 0}][10:14]; !bytes.Equal(got, []byte("BBBB")) {
		t.Fatalf("page = %q, want BBBB (loser undone)", got)
	}
}

func TestRecoverMultiTxnInterleaved(t *testing.T) {
	m, _ := newLog(t)
	// T1 and T2 interleave on different offsets of one page; T1 commits.
	m.LogUpdate(1, 3, 2, 0, []byte("xxxx"), []byte("T1AA"))
	m.LogUpdate(2, 3, 2, 8, []byte("yyyy"), []byte("T2BB"))
	m.LogUpdate(1, 3, 2, 4, []byte("zzzz"), []byte("T1CC"))
	m.LogCommit(1)
	store := pageStore{}
	store.apply(3, 2, 0, []byte("T1AAT1CCT2BB")) // crash state: both applied
	if _, _, err := m.Recover(store.apply); err != nil {
		t.Fatal(err)
	}
	pg := store[[2]int64{3, 2}]
	if !bytes.Equal(pg[0:4], []byte("T1AA")) || !bytes.Equal(pg[4:8], []byte("T1CC")) {
		t.Fatalf("winner bytes wrong: %q", pg[:12])
	}
	if !bytes.Equal(pg[8:12], []byte("yyyy")) {
		t.Fatalf("loser bytes not undone: %q", pg[8:12])
	}
}

func TestAbortedTxnUndoneAtRecovery(t *testing.T) {
	// The transaction layer logs a compensation update (restoring the
	// before-image) ahead of the abort record; recovery replays the whole
	// sequence forward.
	m, _ := newLog(t)
	m.LogUpdate(5, 1, 0, 0, []byte("OLD!"), []byte("NEW!"))
	m.LogUpdate(5, 1, 0, 0, []byte("NEW!"), []byte("OLD!")) // compensation
	m.LogAbort(5)
	m.Force()
	store := pageStore{}
	store.apply(1, 0, 0, []byte("NEW!")) // page escaped to disk pre-abort
	w, l, err := m.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0 || l != 1 {
		t.Fatalf("winners=%d losers=%d", w, l)
	}
	if got := store[[2]int64{1, 0}][:4]; !bytes.Equal(got, []byte("OLD!")) {
		t.Fatalf("aborted txn not undone: %q", got)
	}
}

func TestAbortDoesNotClobberLaterCommit(t *testing.T) {
	// T3 updates X and aborts (with compensation); T4 then commits a new
	// value for X. Recovery must leave T4's value in place — the scenario
	// that breaks naive reverse-undo of aborted transactions.
	m, _ := newLog(t)
	m.LogUpdate(3, 1, 0, 0, []byte("0000"), []byte("3333"))
	m.LogUpdate(3, 1, 0, 0, []byte("3333"), []byte("0000")) // compensation
	m.LogAbort(3)
	m.LogUpdate(4, 1, 0, 0, []byte("0000"), []byte("4444"))
	m.LogCommit(4)
	store := pageStore{}
	store.apply(1, 0, 0, []byte("4444"))
	if _, _, err := m.Recover(store.apply); err != nil {
		t.Fatal(err)
	}
	if got := store[[2]int64{1, 0}][:4]; !bytes.Equal(got, []byte("4444")) {
		t.Fatalf("committed value clobbered: %q", got)
	}
}

func TestResetTruncates(t *testing.T) {
	m, _ := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("a"), []byte("b"))
	m.LogCommit(1)
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	recs, err := m.Scan()
	if err != nil || len(recs) != 0 {
		t.Fatalf("after reset: %d records, err %v", len(recs), err)
	}
	// The log keeps working after reset.
	m.LogUpdate(2, 1, 0, 0, []byte("c"), []byte("d"))
	m.LogCommit(2)
	recs, _ = m.Scan()
	if len(recs) != 2 {
		t.Fatalf("after reset+append: %d records", len(recs))
	}
}

func TestCheckpointRecord(t *testing.T) {
	m, _ := newLog(t)
	if _, err := m.LogCheckpoint(); err != nil {
		t.Fatal(err)
	}
	recs, _ := m.Scan()
	if len(recs) != 1 || recs[0].Type != RecCheckpoint {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestClosedLogRejects(t *testing.T) {
	m, _ := newLog(t)
	m.Close()
	if _, err := m.LogUpdate(1, 1, 0, 0, nil, nil); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if _, _, err := m.LogCommit(1); err != ErrClosed {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

func TestBytesLoggedReflectsDeltaSize(t *testing.T) {
	// The point of §4.3's comparison: WAL logs only the changed bytes,
	// while the embedded system flushes whole pages at commit.
	m, _ := newLog(t)
	small := []byte("ab")
	m.LogUpdate(1, 1, 0, 0, small, small)
	m.LogCommit(1)
	st := m.Stats()
	if st.BytesLogged > 200 {
		t.Fatalf("BytesLogged = %d; delta logging should be tiny", st.BytesLogged)
	}
}

// Property: any sequence of logged records scans back exactly, and recovery
// of a fully-committed history is idempotent (applying it twice gives the
// same pages).
func TestLogRoundTripProperty(t *testing.T) {
	prop := func(ops []struct {
		Txn    uint8
		Block  uint8
		Off    uint8
		Commit bool
	}) bool {
		m, _ := newLog(t)
		var expected []Record
		for _, op := range ops {
			if op.Commit {
				if _, _, err := m.LogCommit(uint64(op.Txn)); err != nil {
					return false
				}
				expected = append(expected, Record{Type: RecCommit, Txn: uint64(op.Txn)})
			} else {
				before := []byte{op.Block, op.Off}
				after := []byte{op.Off, op.Block}
				if _, err := m.LogUpdate(uint64(op.Txn), 1, int64(op.Block), uint32(op.Off), before, after); err != nil {
					return false
				}
				expected = append(expected, Record{Type: RecUpdate, Txn: uint64(op.Txn), Block: int64(op.Block), Offset: uint32(op.Off)})
			}
		}
		if err := m.Force(); err != nil {
			return false
		}
		recs, err := m.Scan()
		if err != nil || len(recs) != len(expected) {
			return false
		}
		for i, want := range expected {
			got := recs[i]
			if got.Type != want.Type || got.Txn != want.Txn {
				return false
			}
			if want.Type == RecUpdate && (got.Block != want.Block || got.Offset != want.Offset) {
				return false
			}
		}
		// Recovery idempotence.
		s1, s2 := pageStore{}, pageStore{}
		if _, _, err := m.Recover(s1.apply); err != nil {
			return false
		}
		if _, _, err := m.Recover(s2.apply); err != nil {
			return false
		}
		if _, _, err := m.Recover(s2.apply); err != nil { // twice
			return false
		}
		if len(s1) != len(s2) {
			return false
		}
		for k, v := range s1 {
			if !bytes.Equal(s2[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverDeterministic(t *testing.T) {
	// Recovery must be a pure function of the log: two runs over the same
	// records produce identical apply traces, identical page state, and
	// identical winner/loser counts. A committed winner, an aborted
	// transaction with a compensating after-image, and an in-flight loser
	// exercise all three classification paths.
	m, _ := newLog(t)
	m.LogUpdate(1, 7, 0, 0, []byte("aaaa"), []byte("wwww"))
	m.LogCommit(1)
	m.LogUpdate(2, 7, 1, 8, []byte("bbbb"), []byte("cccc"))
	m.LogAbort(2)
	m.LogUpdate(3, 8, 2, 16, []byte("dddd"), []byte("eeee"))
	m.LogUpdate(3, 7, 0, 4, []byte("ffff"), []byte("gggg"))
	m.Force() // txn 3 never resolves: in-flight loser

	type applied struct {
		File   uint64
		Block  int64
		Offset uint32
		Data   string
	}
	run := func() ([]applied, pageStore, int, int) {
		var trace []applied
		store := pageStore{}
		w, l, err := m.Recover(func(file uint64, block int64, offset uint32, data []byte) error {
			trace = append(trace, applied{file, block, offset, string(data)})
			return store.apply(file, block, offset, data)
		})
		if err != nil {
			t.Fatal(err)
		}
		return trace, store, w, l
	}
	trace1, store1, w1, l1 := run()
	trace2, store2, w2, l2 := run()
	if w1 != 1 || l1 != 2 {
		t.Fatalf("winners=%d losers=%d, want 1 and 2", w1, l1)
	}
	if w1 != w2 || l1 != l2 {
		t.Fatalf("counts diverged across runs: (%d,%d) vs (%d,%d)", w1, l1, w2, l2)
	}
	if !reflect.DeepEqual(trace1, trace2) {
		t.Fatalf("apply traces diverged:\nrun1: %v\nrun2: %v", trace1, trace2)
	}
	if !reflect.DeepEqual(store1, store2) {
		t.Fatal("post-recovery page state diverged between identical runs")
	}
}

// TestTornRecordTruncatedOnOpen appends a deliberately torn record — a
// prefix of a genuine encoded record, as a crash mid-force would leave — and
// checks that Open both stops the scan at the last intact record and
// physically truncates the torn bytes, so recovery never fails the mount and
// later appends start from a clean tail.
func TestTornRecordTruncatedOnOpen(t *testing.T) {
	m, fsys := newLog(t)
	m.LogUpdate(1, 1, 0, 0, []byte("good"), []byte("good"))
	m.LogCommit(1)
	intactEnd := int64(m.End())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Build a valid record, then write only half of it at the tail.
	torn := encodeRecord(&Record{Type: RecUpdate, Txn: 9, File: 1, Block: 3,
		Before: []byte("beforebefore"), After: []byte("afterafter")})
	torn = torn[:len(torn)/2]
	f, err := fsys.Open("/log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(torn, intactEnd); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	m2, err := Open(fsys, "/log")
	if err != nil {
		t.Fatalf("open with torn record must not fail: %v", err)
	}
	if int64(m2.End()) != intactEnd {
		t.Fatalf("end = %d, want %d (torn record dropped)", m2.End(), intactEnd)
	}
	f2, err := fsys.Open("/log")
	if err != nil {
		t.Fatal(err)
	}
	if sz, _ := f2.Size(); sz != intactEnd {
		t.Fatalf("file size %d after open, want %d (torn tail truncated)", sz, intactEnd)
	}
	f2.Close()
	// Recovery over the truncated log sees exactly the intact transaction.
	store := pageStore{}
	winners, losers, err := m2.Recover(store.apply)
	if err != nil {
		t.Fatal(err)
	}
	if winners != 1 || losers != 0 {
		t.Fatalf("winners=%d losers=%d, want 1/0", winners, losers)
	}
	// And appending after the truncation works.
	m2.LogUpdate(2, 1, 0, 0, []byte("c"), []byte("d"))
	if _, _, err := m2.LogCommit(2); err != nil {
		t.Fatal(err)
	}
	if recs, _ := m2.Scan(); len(recs) != 4 {
		t.Fatalf("%d records after append, want 4", len(recs))
	}
}
