// Package buffer implements an LRU buffer cache of fixed-size blocks keyed by
// (file, logical block number). It is used three ways in this reproduction:
//
//   - as the operating system's buffer cache under the log-structured file
//     system and the read-optimized file system;
//   - as the user-level database page cache inside the LIBTP-style
//     transaction library (Figure 2 of the paper);
//   - as the holding area for transaction-protected dirty pages in the
//     embedded transaction manager (Figure 3): such buffers are placed on
//     "hold" so they cannot be written back or evicted before commit, which
//     is exactly the paper's implementation restriction (1) — "all dirty
//     buffers must be held in memory until commit".
package buffer

import (
	"cmp"
	"container/list"
	"errors"
	"fmt"
	"sync"

	"repro/internal/trace"
)

// FileID identifies a file within a file system.
type FileID uint64

// BlockID identifies one cached block.
type BlockID struct {
	File  FileID
	Block int64
}

func (id BlockID) String() string { return fmt.Sprintf("(%d,%d)", id.File, id.Block) }

// CompareBlockID orders block IDs by (file, block). Callers iterating
// BlockID-keyed maps use it (via detsort.KeysFunc) to keep flush and abort
// orders independent of Go's randomized map iteration.
func CompareBlockID(a, b BlockID) int {
	if c := cmp.Compare(a.File, b.File); c != 0 {
		return c
	}
	return cmp.Compare(a.Block, b.Block)
}

// Fetch loads the contents of a block into dst on a cache miss.
type Fetch func(id BlockID, dst []byte) error

// WriteBack persists a dirty block when it is evicted or flushed.
type WriteBack func(id BlockID, data []byte) error

// Errors returned by the pool.
var (
	ErrNoBuffers = errors.New("buffer: all buffers pinned or held")
	ErrPinned    = errors.New("buffer: operation invalid on pinned buffer")
)

// Buf is a cached block. Data is valid while the buffer is pinned; callers
// must not retain Data after Release.
type Buf struct {
	ID      BlockID
	Data    []byte
	dirty   bool
	held    bool
	loading bool // fetch in flight; Data not yet valid
	pins    int
	elem    *list.Element
}

// Dirty reports whether the buffer has unwritten modifications.
func (b *Buf) Dirty() bool { return b.dirty }

// Held reports whether the buffer is on transaction hold.
func (b *Buf) Held() bool { return b.held }

// Stats counts pool activity.
type Stats struct {
	Hits       int64
	Misses     int64
	Evictions  int64
	WriteBacks int64
}

// Pool is an LRU pool of at most capacity blocks.
type Pool struct {
	mu        sync.Mutex
	cond      *sync.Cond // signalled when an in-flight fetch settles
	capacity  int
	blockSize int
	writeback WriteBack
	table     map[BlockID]*Buf
	lru       *list.List // front = most recently used
	stats     Stats

	tracer *trace.Tracer // nil = tracing off
	// Counter handles are resolved at SetTracer time so the hot paths do no
	// string concatenation and no registry lookups. Nil handles (no tracer)
	// are free to Add to.
	ctrHit, ctrMiss, ctrEvict, ctrWriteBack *trace.Counter
}

// SetTracer attaches a tracer under the given metric prefix (e.g.
// "buffer.user" or "buffer.lfs" — one pool per cache keeps the counters
// separable). Hits, misses, evictions, and write-backs then count into
// <prefix>.{hit,miss,evict,writeback}. A nil tracer costs nothing.
func (p *Pool) SetTracer(tr *trace.Tracer, prefix string) {
	p.mu.Lock()
	p.tracer = tr
	p.ctrHit = tr.Counter(prefix + ".hit")
	p.ctrMiss = tr.Counter(prefix + ".miss")
	p.ctrEvict = tr.Counter(prefix + ".evict")
	p.ctrWriteBack = tr.Counter(prefix + ".writeback")
	p.mu.Unlock()
}

// New creates a pool of capacity blocks of blockSize bytes. writeback is
// invoked (without the pool lock held... it is invoked with the lock held;
// see flushLocked) whenever a dirty block must be persisted. It may be nil
// for pools that are flushed only explicitly via Dirty/MarkClean.
func New(capacity, blockSize int, writeback WriteBack) *Pool {
	if capacity < 1 {
		capacity = 1
	}
	p := &Pool{
		capacity:  capacity,
		blockSize: blockSize,
		writeback: writeback,
		table:     make(map[BlockID]*Buf, capacity),
		lru:       list.New(),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Capacity returns the pool's block capacity.
func (p *Pool) Capacity() int { return p.capacity }

// BlockSize returns the size of each cached block.
func (p *Pool) BlockSize() int { return p.blockSize }

// Stats returns a snapshot of the counters.
func (p *Pool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Len returns the number of resident blocks.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.lru.Len()
}

// Get returns the buffer for id, pinned. On a miss the block is loaded with
// fetch (which may be nil to get a zeroed buffer, used when a brand-new block
// is about to be fully overwritten). The caller must Release the buffer.
// The hit path is allocation-free; only a miss builds a new buffer.
//
//simlint:noalloc
func (p *Pool) Get(id BlockID, fetch Fetch) (*Buf, error) {
	p.mu.Lock()
	for {
		b, ok := p.table[id]
		if !ok {
			break
		}
		if !b.loading {
			p.stats.Hits++
			p.ctrHit.Add(1)
			b.pins++
			p.lru.MoveToFront(b.elem)
			p.mu.Unlock()
			return b, nil
		}
		// Another goroutine is filling this block; wait for its fetch to
		// settle rather than returning uninitialized data. (Virtual
		// processes never reach this wait — they are scheduled one at a
		// time and do not yield mid-fetch — so a sync.Cond is sufficient.)
		p.cond.Wait()
	}
	p.stats.Misses++
	p.ctrMiss.Add(1)
	if err := p.makeRoomLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	//simlint:alloc(cache miss: one buffer and one payload per resident block)
	b := &Buf{ID: id, Data: make([]byte, p.blockSize), pins: 1, loading: fetch != nil}
	b.elem = p.lru.PushFront(b)
	p.table[id] = b
	p.mu.Unlock()

	if fetch != nil {
		err := fetch(id, b.Data)
		p.mu.Lock()
		b.loading = false
		if err != nil {
			b.pins = 0
			p.removeLocked(b)
			p.cond.Broadcast()
			p.mu.Unlock()
			return nil, err
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
	return b, nil
}

// makeRoomLocked evicts the least recently used unpinned, unheld buffer if
// the pool is full. Caller holds p.mu.
func (p *Pool) makeRoomLocked() error {
	if p.lru.Len() < p.capacity {
		return nil
	}
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*Buf)
		if b.pins > 0 || b.held {
			continue
		}
		if b.dirty {
			if p.writeback == nil {
				//simlint:alloc(cold misconfiguration error: no writeback installed)
				return fmt.Errorf("buffer: dirty eviction of %v with no writeback", b.ID)
			}
			if err := p.writeback(b.ID, b.Data); err != nil {
				return err
			}
			p.stats.WriteBacks++
			p.ctrWriteBack.Add(1)
			b.dirty = false
		}
		p.stats.Evictions++
		p.ctrEvict.Add(1)
		p.removeLocked(b)
		return nil
	}
	return ErrNoBuffers
}

func (p *Pool) removeLocked(b *Buf) {
	p.lru.Remove(b.elem)
	delete(p.table, b.ID)
	b.elem = nil
}

// Release unpins a buffer previously returned by Get.
//
//simlint:noalloc
func (p *Pool) Release(b *Buf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if b.pins <= 0 {
		//simlint:alloc(cold misuse diagnostic on the panic path)
		panic(fmt.Sprintf("buffer: Release of unpinned buffer %v", b.ID))
	}
	b.pins--
}

// MarkDirty flags a pinned buffer as modified.
//
//simlint:noalloc
func (p *Pool) MarkDirty(b *Buf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b.dirty = true
}

// MarkClean clears the dirty flag (after the owner persisted the block
// itself, e.g. as part of an LFS segment write).
//
//simlint:noalloc
func (p *Pool) MarkClean(b *Buf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b.dirty = false
}

// SetHold places a buffer on (or removes it from) transaction hold. Held
// buffers are never evicted or flushed; they represent uncommitted data.
func (p *Pool) SetHold(b *Buf, hold bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b.held = hold
}

// Dirty returns the dirty, unheld buffers, most-recently-used first. The
// returned buffers are NOT pinned; the caller must be the pool's owner and
// synchronize access itself (file systems call this while quiescent).
func (p *Pool) Dirty() []*Buf {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Buf
	for e := p.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Buf)
		if b.dirty && !b.held {
			out = append(out, b)
		}
	}
	return out
}

// DirtyFile returns the dirty, unheld buffers belonging to one file.
func (p *Pool) DirtyFile(f FileID) []*Buf {
	var out []*Buf
	for _, b := range p.Dirty() {
		if b.ID.File == f {
			out = append(out, b)
		}
	}
	return out
}

// HeldFile returns the held buffers belonging to one file — the per-inode
// transaction buffer list of §4.1.
func (p *Pool) HeldFile(f FileID) []*Buf {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []*Buf
	for e := p.lru.Front(); e != nil; e = e.Next() {
		b := e.Value.(*Buf)
		if b.held && b.ID.File == f {
			out = append(out, b)
		}
	}
	return out
}

// FlushAll writes back every dirty, unheld buffer through the writeback
// callback and marks them clean.
func (p *Pool) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := p.lru.Back(); e != nil; e = e.Prev() {
		b := e.Value.(*Buf)
		if !b.dirty || b.held {
			continue
		}
		if p.writeback == nil {
			return fmt.Errorf("buffer: FlushAll with no writeback (%v dirty)", b.ID)
		}
		if err := p.writeback(b.ID, b.Data); err != nil {
			return err
		}
		p.stats.WriteBacks++
		p.ctrWriteBack.Add(1)
		b.dirty = false
	}
	return nil
}

// Invalidate drops a block from the cache, discarding modifications. It is
// how transaction abort throws away uncommitted pages. Pinned buffers cannot
// be invalidated.
func (p *Pool) Invalidate(id BlockID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.table[id]
	if !ok {
		return nil
	}
	if b.pins > 0 {
		return ErrPinned
	}
	b.dirty = false
	b.held = false
	p.removeLocked(b)
	return nil
}

// InvalidateFile drops every unpinned block of a file.
func (p *Pool) InvalidateFile(f FileID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var next *list.Element
	for e := p.lru.Front(); e != nil; e = next {
		next = e.Next()
		b := e.Value.(*Buf)
		if b.ID.File != f {
			continue
		}
		if b.pins > 0 {
			return ErrPinned
		}
		b.dirty = false
		b.held = false
		p.removeLocked(b)
	}
	return nil
}

// Lookup returns the resident buffer for id without pinning it, or nil. For
// tests and introspection only.
func (p *Pool) Lookup(id BlockID) *Buf {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.table[id]
}
