package buffer

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestGetMissZeroFill(t *testing.T) {
	p := New(4, 64, nil)
	b, err := p.Get(BlockID{1, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(b)
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("nil fetch should produce zeroed buffer")
		}
	}
	if len(b.Data) != 64 {
		t.Fatalf("block size %d, want 64", len(b.Data))
	}
}

func TestGetHitReturnsSameBuffer(t *testing.T) {
	p := New(4, 64, nil)
	b1, err := p.Get(BlockID{1, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	b1.Data[0] = 42
	p.Release(b1)
	b2, err := p.Get(BlockID{1, 5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release(b2)
	if b2.Data[0] != 42 {
		t.Fatal("cache hit should see previous contents")
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestFetchCalledOnMissOnly(t *testing.T) {
	calls := 0
	fetch := func(id BlockID, dst []byte) error {
		calls++
		dst[0] = byte(id.Block)
		return nil
	}
	p := New(4, 64, nil)
	b, _ := p.Get(BlockID{1, 7}, fetch)
	if b.Data[0] != 7 {
		t.Fatal("fetch did not populate buffer")
	}
	p.Release(b)
	b, _ = p.Get(BlockID{1, 7}, fetch)
	p.Release(b)
	if calls != 1 {
		t.Fatalf("fetch called %d times, want 1", calls)
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	wantErr := errors.New("boom")
	p := New(4, 64, nil)
	_, err := p.Get(BlockID{1, 0}, func(BlockID, []byte) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("got %v, want %v", err, wantErr)
	}
	// The failed block must not be cached.
	if p.Len() != 0 {
		t.Fatal("failed fetch left a resident buffer")
	}
}

func TestLRUEviction(t *testing.T) {
	var evicted []BlockID
	wb := func(id BlockID, data []byte) error {
		evicted = append(evicted, id)
		return nil
	}
	p := New(2, 8, wb)
	for i := int64(0); i < 3; i++ {
		b, err := p.Get(BlockID{1, i}, nil)
		if err != nil {
			t.Fatal(err)
		}
		p.Release(b)
	}
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	// Block 0 was least recently used and clean, so no writeback happened.
	if len(evicted) != 0 {
		t.Fatalf("clean eviction should not write back, got %v", evicted)
	}
	if p.Lookup(BlockID{1, 0}) != nil {
		t.Fatal("block 0 should have been evicted")
	}
	if st := p.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	var wrote []BlockID
	wb := func(id BlockID, data []byte) error {
		wrote = append(wrote, id)
		if data[0] != 9 {
			return fmt.Errorf("writeback saw wrong data %d", data[0])
		}
		return nil
	}
	p := New(1, 8, wb)
	b, _ := p.Get(BlockID{1, 0}, nil)
	b.Data[0] = 9
	p.MarkDirty(b)
	p.Release(b)
	b2, err := p.Get(BlockID{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(b2)
	if len(wrote) != 1 || wrote[0] != (BlockID{1, 0}) {
		t.Fatalf("writebacks = %v, want [(1,0)]", wrote)
	}
}

func TestPinnedBufferNotEvicted(t *testing.T) {
	p := New(1, 8, nil)
	b, _ := p.Get(BlockID{1, 0}, nil)
	// b stays pinned; the pool is full of pinned buffers.
	_, err := p.Get(BlockID{1, 1}, nil)
	if !errors.Is(err, ErrNoBuffers) {
		t.Fatalf("got %v, want ErrNoBuffers", err)
	}
	p.Release(b)
	b2, err := p.Get(BlockID{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(b2)
}

func TestHeldBufferNotEvictedOrFlushed(t *testing.T) {
	wbCalled := false
	p := New(1, 8, func(BlockID, []byte) error { wbCalled = true; return nil })
	b, _ := p.Get(BlockID{1, 0}, nil)
	p.MarkDirty(b)
	p.SetHold(b, true)
	p.Release(b)
	if _, err := p.Get(BlockID{1, 1}, nil); !errors.Is(err, ErrNoBuffers) {
		t.Fatalf("held buffer should block eviction, got %v", err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if wbCalled {
		t.Fatal("held buffer must not be flushed")
	}
	// After release from hold it can be flushed and evicted.
	p.SetHold(b, false)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if !wbCalled {
		t.Fatal("unheld dirty buffer should flush")
	}
}

func TestDirtyListsAndMarkClean(t *testing.T) {
	p := New(8, 8, nil)
	ids := []BlockID{{1, 0}, {2, 0}, {1, 3}}
	for _, id := range ids {
		b, _ := p.Get(id, nil)
		p.MarkDirty(b)
		p.Release(b)
	}
	if got := len(p.Dirty()); got != 3 {
		t.Fatalf("Dirty() len = %d, want 3", got)
	}
	if got := len(p.DirtyFile(1)); got != 2 {
		t.Fatalf("DirtyFile(1) len = %d, want 2", got)
	}
	for _, b := range p.DirtyFile(1) {
		p.MarkClean(b)
	}
	if got := len(p.Dirty()); got != 1 {
		t.Fatalf("after cleaning file 1, Dirty() len = %d, want 1", got)
	}
}

func TestHeldFileList(t *testing.T) {
	p := New(8, 8, nil)
	b1, _ := p.Get(BlockID{1, 0}, nil)
	b2, _ := p.Get(BlockID{1, 1}, nil)
	b3, _ := p.Get(BlockID{2, 0}, nil)
	p.SetHold(b1, true)
	p.SetHold(b2, true)
	p.SetHold(b3, true)
	p.Release(b1)
	p.Release(b2)
	p.Release(b3)
	if got := len(p.HeldFile(1)); got != 2 {
		t.Fatalf("HeldFile(1) = %d, want 2", got)
	}
}

func TestInvalidateDiscardsDirtyData(t *testing.T) {
	fetches := 0
	fetch := func(id BlockID, dst []byte) error { fetches++; dst[0] = 5; return nil }
	p := New(4, 8, nil)
	b, _ := p.Get(BlockID{1, 0}, fetch)
	b.Data[0] = 99
	p.MarkDirty(b)
	p.Release(b)
	if err := p.Invalidate(BlockID{1, 0}); err != nil {
		t.Fatal(err)
	}
	b, _ = p.Get(BlockID{1, 0}, fetch)
	defer p.Release(b)
	if b.Data[0] != 5 {
		t.Fatal("invalidate should discard modifications; re-fetch should restore")
	}
	if fetches != 2 {
		t.Fatalf("fetches = %d, want 2", fetches)
	}
}

func TestInvalidatePinnedFails(t *testing.T) {
	p := New(4, 8, nil)
	b, _ := p.Get(BlockID{1, 0}, nil)
	defer p.Release(b)
	if err := p.Invalidate(BlockID{1, 0}); !errors.Is(err, ErrPinned) {
		t.Fatalf("got %v, want ErrPinned", err)
	}
}

func TestInvalidateFile(t *testing.T) {
	p := New(8, 8, nil)
	for i := int64(0); i < 3; i++ {
		b, _ := p.Get(BlockID{7, i}, nil)
		p.MarkDirty(b)
		p.Release(b)
	}
	b, _ := p.Get(BlockID{8, 0}, nil)
	p.Release(b)
	if err := p.InvalidateFile(7); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (only file 8 remains)", p.Len())
	}
	if p.Lookup(BlockID{8, 0}) == nil {
		t.Fatal("file 8 should survive InvalidateFile(7)")
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	p := New(4, 8, nil)
	b, _ := p.Get(BlockID{1, 0}, nil)
	p.Release(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double release should panic")
		}
	}()
	p.Release(b)
}

func TestFlushAllWritesEverythingDirty(t *testing.T) {
	wrote := map[BlockID]bool{}
	p := New(8, 8, func(id BlockID, data []byte) error { wrote[id] = true; return nil })
	for i := int64(0); i < 5; i++ {
		b, _ := p.Get(BlockID{1, i}, nil)
		if i%2 == 0 {
			p.MarkDirty(b)
		}
		p.Release(b)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 3 {
		t.Fatalf("flushed %d blocks, want 3", len(wrote))
	}
	if len(p.Dirty()) != 0 {
		t.Fatal("no buffers should remain dirty after FlushAll")
	}
}

func TestCapacityFloor(t *testing.T) {
	p := New(0, 8, nil)
	if p.Capacity() != 1 {
		t.Fatalf("capacity floor should be 1, got %d", p.Capacity())
	}
}

// Property: after arbitrary get/dirty/release traffic within capacity, every
// block re-read through the pool returns the last bytes written.
func TestPoolConsistencyProperty(t *testing.T) {
	backing := map[BlockID][]byte{}
	fetch := func(id BlockID, dst []byte) error {
		if b, ok := backing[id]; ok {
			copy(dst, b)
		} else {
			for i := range dst {
				dst[i] = 0
			}
		}
		return nil
	}
	wb := func(id BlockID, data []byte) error {
		cp := make([]byte, len(data))
		copy(cp, data)
		backing[id] = cp
		return nil
	}
	p := New(4, 8, wb)
	shadow := map[BlockID]byte{}
	f := func(ops []struct {
		Block uint8
		Val   byte
	}) bool {
		for _, op := range ops {
			id := BlockID{1, int64(op.Block % 16)}
			b, err := p.Get(id, fetch)
			if err != nil {
				return false
			}
			b.Data[0] = op.Val
			p.MarkDirty(b)
			p.Release(b)
			shadow[id] = op.Val
		}
		for id, want := range shadow {
			b, err := p.Get(id, fetch)
			if err != nil {
				return false
			}
			got := b.Data[0]
			p.Release(b)
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
