package hashidx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/pagestore"
)

func newTable(t *testing.T) *Table {
	t.Helper()
	tb, err := Create(pagestore.NewMemStore(512))
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func key(i int) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(i))
	return b
}

func TestPutGet(t *testing.T) {
	tb := newTable(t)
	if err := tb.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := tb.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := tb.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v", err)
	}
}

func TestReplace(t *testing.T) {
	tb := newTable(t)
	tb.Put([]byte("k"), []byte("v1"))
	tb.Put([]byte("k"), []byte("v2"))
	v, _ := tb.Get([]byte("k"))
	if string(v) != "v2" || tb.Count() != 1 {
		t.Fatalf("v=%q count=%d", v, tb.Count())
	}
}

func TestGrowthSplits(t *testing.T) {
	tb := newTable(t)
	const n = 500
	for i := 0; i < n; i++ {
		if err := tb.Put(key(i), key(i*3)); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	if tb.Buckets() <= 2 {
		t.Fatalf("buckets = %d; table should have split", tb.Buckets())
	}
	if tb.Count() != n {
		t.Fatalf("Count = %d", tb.Count())
	}
	for i := 0; i < n; i++ {
		v, err := tb.Get(key(i))
		if err != nil || !bytes.Equal(v, key(i*3)) {
			t.Fatalf("Get(%d) = %v, %v", i, v, err)
		}
	}
}

func TestDelete(t *testing.T) {
	tb := newTable(t)
	const n = 200
	for i := 0; i < n; i++ {
		tb.Put(key(i), key(i))
	}
	for i := 0; i < n; i += 2 {
		if err := tb.Delete(key(i)); err != nil {
			t.Fatalf("Delete(%d): %v", i, err)
		}
	}
	if tb.Count() != n/2 {
		t.Fatalf("Count = %d", tb.Count())
	}
	for i := 0; i < n; i++ {
		_, err := tb.Get(key(i))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted %d still present", i)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("survivor %d lost: %v", i, err)
		}
	}
	if err := tb.Delete(key(0)); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestScanVisitsAll(t *testing.T) {
	tb := newTable(t)
	const n = 300
	for i := 0; i < n; i++ {
		tb.Put(key(i), key(i))
	}
	seen := map[string]bool{}
	err := tb.Scan(func(k, v []byte) bool {
		seen[string(k)] = true
		return true
	})
	if err != nil || len(seen) != n {
		t.Fatalf("scan saw %d, %v", len(seen), err)
	}
}

func TestOverflowChains(t *testing.T) {
	// Values sized so only a couple fit per 512-byte page, forcing
	// overflow pages before splits catch up.
	tb := newTable(t)
	val := make([]byte, 150)
	for i := 0; i < 60; i++ {
		if err := tb.Put(key(i), val); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	for i := 0; i < 60; i++ {
		if _, err := tb.Get(key(i)); err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
	}
}

func TestPersistence(t *testing.T) {
	st := pagestore.NewMemStore(512)
	tb, _ := Create(st)
	for i := 0; i < 150; i++ {
		tb.Put(key(i), key(i+1))
	}
	tb2, err := Open(st)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Count() != 150 {
		t.Fatalf("Count = %d", tb2.Count())
	}
	v, err := tb2.Get(key(77))
	if err != nil || !bytes.Equal(v, key(78)) {
		t.Fatalf("Get = %v, %v", v, err)
	}
}

func TestTooLarge(t *testing.T) {
	tb := newTable(t)
	if err := tb.Put([]byte("k"), make([]byte, 600)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v", err)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	st := pagestore.NewMemStore(512)
	st.AllocPage()
	if _, err := Open(st); err == nil {
		t.Fatal("garbage should not open")
	}
}

// Property: table behaves like a map under random put/delete traffic.
func TestTableMatchesMapProperty(t *testing.T) {
	tb := newTable(t)
	shadow := map[string]string{}
	prop := func(ops []struct {
		K   uint16
		V   uint16
		Del bool
	}) bool {
		for _, o := range ops {
			k := fmt.Sprintf("key-%d", o.K%300)
			if o.Del {
				_, exists := shadow[k]
				err := tb.Delete([]byte(k))
				if exists != (err == nil) {
					return false
				}
				delete(shadow, k)
			} else {
				v := fmt.Sprintf("val-%d", o.V)
				if err := tb.Put([]byte(k), []byte(v)); err != nil {
					return false
				}
				shadow[k] = v
			}
		}
		if tb.Count() != int64(len(shadow)) {
			return false
		}
		for k, v := range shadow {
			got, err := tb.Get([]byte(k))
			if err != nil || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
