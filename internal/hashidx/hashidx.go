// Package hashidx implements a linear-hashing access method — the third
// db(3) access method the paper's record layer offers ("B-Tree, hashed, or
// fixed-length records", §3). Buckets split incrementally as the table
// grows, so no global rehash ever happens; collisions beyond a page spill
// into chained overflow pages.
package hashidx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/pagestore"
)

// Errors.
var (
	ErrNotFound = errors.New("hashidx: key not found")
	ErrTooLarge = errors.New("hashidx: entry exceeds page capacity")
	ErrCorrupt  = errors.New("hashidx: corrupt page")
	ErrFull     = errors.New("hashidx: bucket directory full")
)

const (
	metaMagic = 0x48534831 // "HSH1"

	// splitFill is the average entries-per-bucket threshold that triggers
	// a bucket split.
	splitFill = 6
)

// Table is a linear-hash table.
type Table struct {
	st       pagestore.Store
	pageSize int
	level    uint32 // table has between 2^level and 2^(level+1) buckets
	split    int64  // next bucket to split
	count    int64
	dir      []int64 // bucket → page number
}

// dirCapacity is how many bucket pointers fit in the meta page.
func dirCapacity(pageSize int) int { return (pageSize - 32) / 8 }

func (t *Table) writeMeta() error {
	b := make([]byte, t.pageSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], metaMagic)
	le.PutUint32(b[4:], t.level)
	le.PutUint64(b[8:], uint64(t.split))
	le.PutUint64(b[16:], uint64(t.count))
	le.PutUint32(b[24:], uint32(len(t.dir)))
	off := 32
	for _, p := range t.dir {
		le.PutUint64(b[off:], uint64(p))
		off += 8
	}
	return t.st.WritePage(0, b)
}

// Create initializes a table with two buckets on an empty store.
func Create(st pagestore.Store) (*Table, error) {
	if n, err := st.NumPages(); err != nil {
		return nil, err
	} else if n != 0 {
		return nil, fmt.Errorf("hashidx: store not empty (%d pages)", n)
	}
	t := &Table{st: st, pageSize: st.PageSize(), level: 1}
	if _, err := st.AllocPage(); err != nil { // meta
		return nil, err
	}
	for i := 0; i < 2; i++ {
		p, err := st.AllocPage()
		if err != nil {
			return nil, err
		}
		t.dir = append(t.dir, p)
		if err := t.writeBucket(p, bucket{}); err != nil {
			return nil, err
		}
	}
	return t, t.writeMeta()
}

// Open loads an existing table.
func Open(st pagestore.Store) (*Table, error) {
	t := &Table{st: st, pageSize: st.PageSize()}
	b := make([]byte, t.pageSize)
	if err := st.ReadPage(0, b); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != metaMagic {
		return nil, fmt.Errorf("%w: bad meta magic", ErrCorrupt)
	}
	t.level = le.Uint32(b[4:])
	t.split = int64(le.Uint64(b[8:]))
	t.count = int64(le.Uint64(b[16:]))
	n := int(le.Uint32(b[24:]))
	off := 32
	for i := 0; i < n; i++ {
		t.dir = append(t.dir, int64(le.Uint64(b[off:])))
		off += 8
	}
	return t, nil
}

// Count returns the number of stored entries.
func (t *Table) Count() int64 { return t.count }

// Buckets returns the current number of primary buckets.
func (t *Table) Buckets() int { return len(t.dir) }

// bucket is the in-memory form of a bucket page (one link of the chain).
type bucket struct {
	next int64 // overflow page, 0 = none
	keys [][]byte
	vals [][]byte
}

// Page layout: next i64, nkeys u16, then (klen u16, vlen u16, key, val)*.
const bucketHeader = 8 + 2

func bucketSize(b *bucket) int {
	s := bucketHeader
	for i, k := range b.keys {
		s += 4 + len(k) + len(b.vals[i])
	}
	return s
}

func (t *Table) writeBucket(page int64, b bucket) error {
	buf := make([]byte, t.pageSize)
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(b.next))
	le.PutUint16(buf[8:], uint16(len(b.keys)))
	off := bucketHeader
	for i, k := range b.keys {
		le.PutUint16(buf[off:], uint16(len(k)))
		le.PutUint16(buf[off+2:], uint16(len(b.vals[i])))
		off += 4
		copy(buf[off:], k)
		off += len(k)
		copy(buf[off:], b.vals[i])
		off += len(b.vals[i])
	}
	if off > t.pageSize {
		return ErrTooLarge
	}
	return t.st.WritePage(page, buf)
}

func (t *Table) readBucket(page int64) (bucket, error) {
	buf := make([]byte, t.pageSize)
	if err := t.st.ReadPage(page, buf); err != nil {
		return bucket{}, err
	}
	le := binary.LittleEndian
	var b bucket
	b.next = int64(le.Uint64(buf[0:]))
	n := int(le.Uint16(buf[8:]))
	off := bucketHeader
	for i := 0; i < n; i++ {
		klen := int(le.Uint16(buf[off:]))
		vlen := int(le.Uint16(buf[off+2:]))
		off += 4
		b.keys = append(b.keys, append([]byte(nil), buf[off:off+klen]...))
		off += klen
		b.vals = append(b.vals, append([]byte(nil), buf[off:off+vlen]...))
		off += vlen
	}
	return b, nil
}

func hashKey(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

// bucketFor computes the linear-hashing bucket index of key.
func (t *Table) bucketFor(key []byte) int64 {
	h := hashKey(key)
	mask := uint64(1)<<t.level - 1
	b := int64(h & mask)
	if b < t.split {
		b = int64(h & (mask<<1 | 1))
	}
	return b
}

// Get returns the value stored under key.
func (t *Table) Get(key []byte) ([]byte, error) {
	page := t.dir[t.bucketFor(key)]
	for page != 0 {
		b, err := t.readBucket(page)
		if err != nil {
			return nil, err
		}
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				return b.vals[i], nil
			}
		}
		page = b.next
	}
	return nil, ErrNotFound
}

// Put inserts or replaces key's value.
func (t *Table) Put(key, value []byte) error {
	if bucketHeader+4+len(key)+len(value) > t.pageSize {
		return ErrTooLarge
	}
	inserted, err := t.putChain(t.dir[t.bucketFor(key)], key, value)
	if err != nil {
		return err
	}
	if inserted {
		t.count++
		if t.count/int64(len(t.dir)) > splitFill {
			if err := t.splitBucket(); err != nil && !errors.Is(err, ErrFull) {
				return err
			}
		}
	}
	return t.writeMeta()
}

// putChain inserts into a bucket chain, spilling to overflow pages as needed.
func (t *Table) putChain(page int64, key, value []byte) (bool, error) {
	for {
		b, err := t.readBucket(page)
		if err != nil {
			return false, err
		}
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				b.vals[i] = append([]byte(nil), value...)
				return false, t.writeBucket(page, b)
			}
		}
		trial := bucket{next: b.next, keys: append(b.keys, key), vals: append(b.vals, value)}
		if bucketSize(&trial) <= t.pageSize {
			return true, t.writeBucket(page, trial)
		}
		if b.next == 0 {
			ov, err := t.st.AllocPage()
			if err != nil {
				return false, err
			}
			if err := t.writeBucket(ov, bucket{keys: [][]byte{key}, vals: [][]byte{value}}); err != nil {
				return false, err
			}
			b.next = ov
			return true, t.writeBucket(page, b)
		}
		page = b.next
	}
}

// splitBucket performs one linear-hashing split: bucket `split` is rehashed
// between itself and a new bucket at index split+2^level.
func (t *Table) splitBucket() error {
	if len(t.dir) >= dirCapacity(t.pageSize) {
		return ErrFull
	}
	oldIdx := t.split
	newIdx := t.split + int64(1)<<t.level
	newPage, err := t.st.AllocPage()
	if err != nil {
		return err
	}
	t.dir = append(t.dir, newPage)

	// Collect every entry in the old chain.
	var keys, vals [][]byte
	var chain []int64
	page := t.dir[oldIdx]
	for page != 0 {
		chain = append(chain, page)
		b, err := t.readBucket(page)
		if err != nil {
			return err
		}
		keys = append(keys, b.keys...)
		vals = append(vals, b.vals...)
		page = b.next
	}

	// Advance the split pointer BEFORE redistribution so bucketFor uses
	// the expanded address space.
	t.split++
	if t.split == int64(1)<<t.level {
		t.level++
		t.split = 0
	}

	var oldB, newB bucket
	for i, k := range keys {
		h := hashKey(k)
		if t.rehashIndex(h, oldIdx, newIdx) == newIdx {
			newB.keys = append(newB.keys, k)
			newB.vals = append(newB.vals, vals[i])
		} else {
			oldB.keys = append(oldB.keys, k)
			oldB.vals = append(oldB.vals, vals[i])
		}
	}
	if err := t.writeChain(chain, t.dir[oldIdx], oldB); err != nil {
		return err
	}
	return t.writeChain(nil, newPage, newB)
}

// rehashIndex decides whether a key with hash h belongs in oldIdx or newIdx
// after the split: newIdx differs from oldIdx in exactly one bit (the 2^level
// bit in effect at split time), so that bit of the hash decides.
func (t *Table) rehashIndex(h uint64, oldIdx, newIdx int64) int64 {
	bit := uint64(newIdx - oldIdx) // == 2^level at split time
	if h&bit != 0 {
		return newIdx
	}
	return oldIdx
}

// writeChain stores a bucket's entries across its existing chain pages (and
// new overflow pages if needed), clearing leftover links.
func (t *Table) writeChain(chain []int64, first int64, b bucket) error {
	if len(chain) == 0 {
		chain = []int64{first}
	}
	ci := 0
	cur := bucket{}
	flushTo := func(page int64, next int64) error {
		cur.next = next
		err := t.writeBucket(page, cur)
		cur = bucket{}
		return err
	}
	for i := 0; i < len(b.keys); i++ {
		trial := bucket{keys: append(cur.keys, b.keys[i]), vals: append(cur.vals, b.vals[i])}
		if bucketSize(&trial) > t.pageSize {
			// Current page is full: move to the next chain page.
			var next int64
			if ci+1 < len(chain) {
				next = chain[ci+1]
			} else {
				ov, err := t.st.AllocPage()
				if err != nil {
					return err
				}
				chain = append(chain, ov)
				next = ov
			}
			if err := flushTo(chain[ci], next); err != nil {
				return err
			}
			ci++
		}
		cur.keys = append(cur.keys, b.keys[i])
		cur.vals = append(cur.vals, b.vals[i])
	}
	if err := flushTo(chain[ci], 0); err != nil {
		return err
	}
	// Clear any leftover chain pages.
	for i := ci + 1; i < len(chain); i++ {
		if err := t.writeBucket(chain[i], bucket{}); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes key.
func (t *Table) Delete(key []byte) error {
	page := t.dir[t.bucketFor(key)]
	for page != 0 {
		b, err := t.readBucket(page)
		if err != nil {
			return err
		}
		for i, k := range b.keys {
			if bytes.Equal(k, key) {
				b.keys = append(b.keys[:i], b.keys[i+1:]...)
				b.vals = append(b.vals[:i], b.vals[i+1:]...)
				if err := t.writeBucket(page, b); err != nil {
					return err
				}
				t.count--
				return t.writeMeta()
			}
		}
		page = b.next
	}
	return ErrNotFound
}

// Scan invokes fn for every entry (in unspecified order), stopping early if
// fn returns false.
func (t *Table) Scan(fn func(key, value []byte) bool) error {
	for _, first := range t.dir {
		page := first
		for page != 0 {
			b, err := t.readBucket(page)
			if err != nil {
				return err
			}
			for i, k := range b.keys {
				if !fn(k, b.vals[i]) {
					return nil
				}
			}
			page = b.next
		}
	}
	return nil
}
