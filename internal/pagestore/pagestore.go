// Package pagestore defines the paged-file abstraction the access methods
// (btree, recno, hashidx) are written against. The same B-tree code thereby
// runs in both of the paper's configurations:
//
//   - user-level: LIBTP's buffer manager implements Store, acquiring
//     two-phase page locks and writing WAL records on every page update
//     (Figure 2);
//   - embedded: a plain file on the file system implements Store, and the
//     file system's transaction manager intercepts the page accesses
//     (Figure 3).
package pagestore

import (
	"errors"
	"fmt"

	"repro/internal/vfs"
)

// ErrOutOfRange reports access to a page that was never allocated.
var ErrOutOfRange = errors.New("pagestore: page out of range")

// Store is a flat array of fixed-size pages.
type Store interface {
	// PageSize returns the page size in bytes.
	PageSize() int
	// NumPages returns the number of allocated pages.
	NumPages() (int64, error)
	// ReadPage fills p (one page long) with page n.
	ReadPage(n int64, p []byte) error
	// WritePage stores p as page n. n must be < NumPages().
	WritePage(n int64, p []byte) error
	// AllocPage appends a zeroed page and returns its number.
	AllocPage() (int64, error)
	// Sync forces written pages to stable storage.
	Sync() error
}

// FileStore adapts a vfs.File into a Store. Page n occupies bytes
// [n·size, (n+1)·size).
type FileStore struct {
	F    vfs.File
	Size int
}

// NewFileStore wraps f with the given page size.
func NewFileStore(f vfs.File, pageSize int) *FileStore {
	return &FileStore{F: f, Size: pageSize}
}

// PageSize implements Store.
func (s *FileStore) PageSize() int { return s.Size }

// NumPages implements Store.
func (s *FileStore) NumPages() (int64, error) {
	sz, err := s.F.Size()
	if err != nil {
		return 0, err
	}
	return (sz + int64(s.Size) - 1) / int64(s.Size), nil
}

// ReadPage implements Store.
func (s *FileStore) ReadPage(n int64, p []byte) error {
	if len(p) != s.Size {
		return fmt.Errorf("pagestore: bad buffer size %d", len(p))
	}
	np, err := s.NumPages()
	if err != nil {
		return err
	}
	if n < 0 || n >= np {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, n, np)
	}
	_, err = s.F.ReadAt(p, n*int64(s.Size))
	return err
}

// WritePage implements Store.
func (s *FileStore) WritePage(n int64, p []byte) error {
	if len(p) != s.Size {
		return fmt.Errorf("pagestore: bad buffer size %d", len(p))
	}
	np, err := s.NumPages()
	if err != nil {
		return err
	}
	if n < 0 || n >= np {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, n, np)
	}
	_, err = s.F.WriteAt(p, n*int64(s.Size))
	return err
}

// AllocPage implements Store.
func (s *FileStore) AllocPage() (int64, error) {
	np, err := s.NumPages()
	if err != nil {
		return 0, err
	}
	zero := make([]byte, s.Size)
	if _, err := s.F.WriteAt(zero, np*int64(s.Size)); err != nil {
		return 0, err
	}
	return np, nil
}

// Sync implements Store.
func (s *FileStore) Sync() error { return s.F.Sync() }

// MemStore is an in-memory Store for unit tests.
type MemStore struct {
	Size  int
	pages [][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore(pageSize int) *MemStore { return &MemStore{Size: pageSize} }

// PageSize implements Store.
func (s *MemStore) PageSize() int { return s.Size }

// NumPages implements Store.
func (s *MemStore) NumPages() (int64, error) { return int64(len(s.pages)), nil }

// ReadPage implements Store.
func (s *MemStore) ReadPage(n int64, p []byte) error {
	if n < 0 || n >= int64(len(s.pages)) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, n)
	}
	copy(p, s.pages[n])
	return nil
}

// WritePage implements Store.
func (s *MemStore) WritePage(n int64, p []byte) error {
	if n < 0 || n >= int64(len(s.pages)) {
		return fmt.Errorf("%w: page %d", ErrOutOfRange, n)
	}
	copy(s.pages[n], p)
	return nil
}

// AllocPage implements Store.
func (s *MemStore) AllocPage() (int64, error) {
	s.pages = append(s.pages, make([]byte, s.Size))
	return int64(len(s.pages) - 1), nil
}

// Sync implements Store.
func (s *MemStore) Sync() error { return nil }
