package ffs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func newFS(t *testing.T) (*FS, *disk.Device, *sim.Clock) {
	t.Helper()
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fs, err := Format(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return fs, dev, clk
}

func writeFile(t *testing.T, fs vfs.FileSystem, path string, data []byte) {
	t.Helper()
	f, err := fs.Create(path)
	if err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("WriteAt(%s): %v", path, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func readFile(t *testing.T, fs vfs.FileSystem, path string) []byte {
	t.Helper()
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	if _, err := f.ReadAt(data, 0); err != nil {
		t.Fatal(err)
	}
	return data
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)*5 + seed
	}
	return b
}

func TestRoundTrip(t *testing.T) {
	fs, _, _ := newFS(t)
	data := pattern(50000, 1)
	writeFile(t, fs, "/f", data)
	if got := readFile(t, fs, "/f"); !bytes.Equal(got, data) {
		t.Fatal("read back mismatch")
	}
}

func TestSequentialAllocationIsContiguous(t *testing.T) {
	fs, _, _ := newFS(t)
	f, err := fs.Create("/seq")
	if err != nil {
		t.Fatal(err)
	}
	// 100 sequential block writes should coalesce into one extent.
	buf := pattern(4096, 2)
	for i := int64(0); i < 100; i++ {
		if _, err := f.WriteAt(buf, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()
	fs.mu.Lock()
	in, _ := fs.lookupLocked("/seq")
	next := len(in.extents)
	fs.mu.Unlock()
	if next != 1 {
		t.Fatalf("sequential file has %d extents, want 1 (read-optimized layout)", next)
	}
}

// TestInPlaceUpdate is the defining contrast with LFS: rewriting a block
// must keep its disk address.
func TestInPlaceUpdate(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/f", pattern(8192, 3))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	in, _ := fs.lookupLocked("/f")
	before := in.mapBlock(1)
	fs.mu.Unlock()

	f, _ := fs.Open("/f")
	f.WriteAt(pattern(4096, 9), 4096)
	f.Close()
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}

	fs.mu.Lock()
	after := in.mapBlock(1)
	fs.mu.Unlock()
	if before == 0 || before != after {
		t.Fatalf("block moved from %d to %d; FFS must update in place", before, after)
	}
}

func TestSyncerFlushesAfterInterval(t *testing.T) {
	fs, _, clk := newFS(t)
	writeFile(t, fs, "/f", pattern(40960, 4))
	st0 := fs.Stats()
	// Before the interval nothing is flushed by reads.
	f, _ := fs.Open("/f")
	buf := make([]byte, 100)
	f.ReadAt(buf, 0)
	if fs.Stats().SyncerRuns != st0.SyncerRuns {
		t.Fatal("syncer should not run before the interval")
	}
	// Advance simulated time past 30 s; the next operation triggers it.
	clk.Advance(31 * time.Second)
	f.ReadAt(buf, 0)
	f.Close()
	if fs.Stats().SyncerRuns <= st0.SyncerRuns {
		t.Fatal("syncer should run after the interval")
	}
}

func TestRemountPersistence(t *testing.T) {
	fs, dev, clk := newFS(t)
	fs.Mkdir("/d")
	data := pattern(123456, 5)
	writeFile(t, fs, "/d/f", data)
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs2, "/d/f"); !bytes.Equal(got, data) {
		t.Fatal("data lost across remount")
	}
	entries, err := fs2.ReadDir("/d")
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir after remount: %v, %v", entries, err)
	}
}

func TestOverflowExtents(t *testing.T) {
	fs, dev, clk := newFS(t)
	// Force fragmentation: interleave writes to two files so extents
	// cannot merge, pushing one file past the 12 inline extents.
	fa, _ := fs.Create("/a")
	fb, _ := fs.Create("/b")
	buf := pattern(4096, 6)
	for i := int64(0); i < 40; i++ {
		if _, err := fa.WriteAt(buf, i*4096); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.WriteAt(buf, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	fa.Close()
	fb.Close()
	fs.mu.Lock()
	in, _ := fs.lookupLocked("/a")
	next := len(in.extents)
	fs.mu.Unlock()
	if next <= inlineExtents {
		t.Skipf("allocation produced only %d extents; cannot exercise overflow", next)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2, err := Mount(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := readFile(t, fs2, "/a")
	want := make([]byte, 40*4096)
	for i := 0; i < 40; i++ {
		copy(want[i*4096:], buf)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("overflow-extent file corrupted across remount")
	}
}

func TestTruncate(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/t", pattern(20000, 7))
	f, _ := fs.Open("/t")
	if err := f.Truncate(5000); err != nil {
		t.Fatal(err)
	}
	if sz, _ := f.Size(); sz != 5000 {
		t.Fatalf("size = %d", sz)
	}
	if err := f.Truncate(9000); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4000)
	f.ReadAt(buf, 5000)
	for _, v := range buf {
		if v != 0 {
			t.Fatal("regrown region should be zeros")
		}
	}
	f.Close()
}

func TestTruncateFreesBlocks(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/t", pattern(100*4096, 8))
	fs.mu.Lock()
	in, _ := fs.lookupLocked("/t")
	before := in.blocks()
	fs.mu.Unlock()
	f, _ := fs.Open("/t")
	if err := f.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	f.Close()
	fs.mu.Lock()
	after := in.blocks()
	fs.mu.Unlock()
	if before != 100 || after != 1 {
		t.Fatalf("blocks %d → %d, want 100 → 1", before, after)
	}
}

func TestRemoveFreesSpace(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/big", pattern(200*4096, 9))
	fs.mu.Lock()
	var used0 int64
	for b := fs.sb.DataStart; b < fs.sb.TotalBlocks; b++ {
		if fs.bit(b) {
			used0++
		}
	}
	fs.mu.Unlock()
	if err := fs.Remove("/big"); err != nil {
		t.Fatal(err)
	}
	fs.mu.Lock()
	var used1 int64
	for b := fs.sb.DataStart; b < fs.sb.TotalBlocks; b++ {
		if fs.bit(b) {
			used1++
		}
	}
	fs.mu.Unlock()
	if used1 >= used0 {
		t.Fatalf("used blocks %d → %d; remove should free space", used0, used1)
	}
	if _, err := fs.Open("/big"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("file should be gone")
	}
}

func TestRename(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/x", []byte("content"))
	if err := fs.Rename("/x", "/y"); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs, "/y"); string(got) != "content" {
		t.Fatal("renamed content wrong")
	}
}

func TestDirectoriesNested(t *testing.T) {
	fs, _, _ := newFS(t)
	for _, d := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := fs.Mkdir(d); err != nil {
			t.Fatalf("Mkdir(%s): %v", d, err)
		}
	}
	writeFile(t, fs, "/a/b/c/deep", []byte("deep"))
	if got := readFile(t, fs, "/a/b/c/deep"); string(got) != "deep" {
		t.Fatal("deep file content wrong")
	}
	if err := fs.Remove("/a"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Fatalf("got %v, want ErrNotEmpty", err)
	}
}

func TestTxnProtectPersists(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/db", []byte("x"))
	if err := fs.SetTxnProtected("/db", true); err != nil {
		t.Fatal(err)
	}
	fs.Sync()
	fs2, err := Mount(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := fs2.Stat("/db")
	if !info.TxnProtected {
		t.Fatal("attribute lost across remount")
	}
}

func TestInodeExhaustion(t *testing.T) {
	clk := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clk)
	fs, err := Format(dev, clk, Options{MaxInodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 20 && lastErr == nil; i++ {
		var f vfs.File
		f, lastErr = fs.Create(fmt.Sprintf("/f%d", i))
		if lastErr == nil {
			f.Close()
		}
	}
	if !errors.Is(lastErr, ErrNoInodes) {
		t.Fatalf("got %v, want ErrNoInodes", lastErr)
	}
}

func TestDiskFull(t *testing.T) {
	clk := sim.NewClock()
	model := sim.SmallModel()
	model.NumBlocks = 1024 // 4 MB
	dev := disk.New(model, clk)
	fs, err := Format(dev, clk, Options{MaxInodes: 64, CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 50 && lastErr == nil; i++ {
		var f vfs.File
		f, lastErr = fs.Create(fmt.Sprintf("/f%d", i))
		if lastErr != nil {
			break
		}
		_, lastErr = f.WriteAt(pattern(100*4096, byte(i)), 0)
		f.Close()
	}
	if !errors.Is(lastErr, ErrNoSpace) {
		t.Fatalf("got %v, want ErrNoSpace", lastErr)
	}
}

// TestSequentialReadFastAfterRandomUpdates verifies the read-optimized
// property at the heart of Figure 6: random in-place updates do not degrade
// subsequent sequential read locality.
func TestSequentialReadFastAfterRandomUpdates(t *testing.T) {
	fs, dev, clk := newFS(t)
	const blocks = 512
	data := pattern(blocks*4096, 10)
	writeFile(t, fs, "/scan", data)
	fs.Sync()

	// Random updates.
	rng := sim.NewRNG(11)
	f, _ := fs.Open("/scan")
	for i := 0; i < 200; i++ {
		lbn := rng.Int63n(blocks)
		f.WriteAt(pattern(4096, byte(i)), lbn*4096)
	}
	fs.Sync()

	// Sequential scan: measure simulated time; drop the cache first by
	// remounting.
	fs2, err := Mount(dev, clk, Options{CacheBlocks: 64})
	if err != nil {
		t.Fatal(err)
	}
	g, _ := fs2.Open("/scan")
	start := clk.Now()
	buf := make([]byte, 64*1024)
	for off := int64(0); off < blocks*4096; off += int64(len(buf)) {
		if _, err := g.ReadAt(buf, off); err != nil {
			t.Fatal(err)
		}
	}
	scanTime := clk.Now() - start
	g.Close()
	f.Close()

	// The scan should approach media rate: compare with the pure transfer
	// time of the same bytes (allow 3× for block-at-a-time reads).
	media := dev.Model().TransferTime(blocks * 4096)
	if scanTime > 5*media {
		t.Fatalf("sequential scan %v too slow vs media %v; layout not read-optimized", scanTime, media)
	}
}
