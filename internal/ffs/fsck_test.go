package ffs

import (
	"bytes"
	"testing"
)

func TestFsckCleanStateNeedsNoRepair(t *testing.T) {
	fs, _, _ := newFS(t)
	writeFile(t, fs, "/a", pattern(3*4096, 1))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := fs.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean file system should need no repair: %+v", rep)
	}
	if rep.Inodes < 1 || rep.UsedBlocks == 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestFsckReclaimsStaleBitmapAfterCrash models the FFS crash hazard: file
// data and the write-through inode table are durable, but the bitmap only
// reaches the disk at Sync. A crash between a file fsync and the next sync
// leaves blocks that the inode table owns marked free — and a recovery that
// allocated them (say, for a WAL replay's history append) would clobber
// committed data. Fsck must re-mark them before anything allocates.
func TestFsckReclaimsStaleBitmapAfterCrash(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/base", pattern(2*4096, 1))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Grow a file durably (data + inode) without syncing the bitmap.
	data := pattern(6*4096, 2)
	f, err := fs.Create("/grown")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Directory entry for /grown must be durable too for this scenario
	// (dir blocks are data blocks of the root inode).
	rootIno := RootIno
	fs.mu.Lock()
	err = fs.flushDirtyLocked(&rootIno)
	if err == nil {
		err = fs.storeInodeLocked(fs.inodes[RootIno])
	}
	fs.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	f.Close()

	// CRASH: remount from the device; the stale bitmap is reloaded.
	fs2, err := Mount(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fs2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LostBlocks == 0 {
		t.Fatalf("stale bitmap should show lost blocks: %+v", rep)
	}
	if rep.CrossLinked != 0 {
		t.Fatalf("no cross-links expected: %+v", rep)
	}
	// After repair, fresh allocations must not clobber /grown.
	writeFile(t, fs2, "/new", pattern(8*4096, 3))
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := readFile(t, fs2, "/grown"); !bytes.Equal(got, data) {
		t.Fatal("fsck failed to protect durable data from reallocation")
	}
	// A second fsck finds nothing to repair.
	rep2, err := fs2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("second fsck should be clean: %+v", rep2)
	}
}

// TestFsckFreesLeakedBlocks covers the opposite staleness: blocks freed by a
// durable truncate remain marked used in the crashed bitmap, and fsck
// returns them to the free pool.
func TestFsckFreesLeakedBlocks(t *testing.T) {
	fs, dev, clk := newFS(t)
	writeFile(t, fs, "/shrunk", pattern(6*4096, 1))
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("/shrunk")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(4096); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // inode durable, bitmap not
		t.Fatal(err)
	}
	f.Close()

	fs2, err := Mount(dev, clk, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := fs2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LeakedBlocks == 0 {
		t.Fatalf("truncated blocks should be reported leaked: %+v", rep)
	}
}
