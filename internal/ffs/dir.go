package ffs

import (
	"fmt"

	"repro/internal/vfs"
)

func (fs *FS) readDirLocked(in *inode) ([]vfs.RawDirEntry, error) {
	if !in.isDir() {
		return nil, vfs.ErrNotDir
	}
	if in.size == 0 {
		return nil, nil
	}
	blob := make([]byte, in.size)
	if _, err := fs.readAtLocked(in, blob, 0); err != nil {
		return nil, err
	}
	return vfs.DecodeDirEntries(blob)
}

func (fs *FS) writeDirLocked(in *inode, entries []vfs.RawDirEntry) error {
	blob := vfs.EncodeDirEntries(entries)
	// Pad the blob to whole blocks. The entry count inside the first block
	// is then the sole authority on the directory's contents: a directory
	// update that stays within one block is atomic on the device, even
	// though FFS has no log to make the data block and the inode's new size
	// durable together. Without the padding, a crash between the two writes
	// leaves a size that disagrees with the entry count, and the blob no
	// longer decodes.
	if rem := len(blob) % fs.blockSize; rem != 0 {
		blob = append(blob, make([]byte, fs.blockSize-rem)...)
	}
	if int64(len(blob)) < in.size {
		if err := fs.truncateLocked(in, int64(len(blob))); err != nil {
			return err
		}
	}
	if _, err := fs.writeAtLocked(in, blob, 0); err != nil {
		return err
	}
	in.size = int64(len(blob))
	in.dirty = true
	return nil
}

func (fs *FS) walkLocked(parts []string) (*inode, error) {
	in, err := fs.loadInodeLocked(RootIno)
	if err != nil {
		return nil, err
	}
	for _, name := range parts {
		entries, err := fs.readDirLocked(in)
		if err != nil {
			return nil, err
		}
		var next Ino
		found := false
		for _, e := range entries {
			if e.Name == name {
				next = Ino(e.Ino)
				found = true
				break
			}
		}
		if !found {
			return nil, vfs.ErrNotExist
		}
		in, err = fs.loadInodeLocked(next)
		if err != nil {
			return nil, err
		}
	}
	return in, nil
}

func (fs *FS) lookupLocked(path string) (*inode, error) {
	parts, ok := vfs.SplitPath(path)
	if !ok {
		return nil, vfs.ErrBadPath
	}
	return fs.walkLocked(parts)
}

func (fs *FS) nameiParentLocked(path string) (*inode, string, error) {
	dirParts, base, ok := vfs.SplitDirBase(path)
	if !ok {
		return nil, "", vfs.ErrBadPath
	}
	in, err := fs.walkLocked(dirParts)
	if err != nil {
		return nil, "", err
	}
	if !in.isDir() {
		return nil, "", vfs.ErrNotDir
	}
	return in, base, nil
}

func (fs *FS) addEntryLocked(dir *inode, name string, ino Ino, isDir bool) error {
	entries, err := fs.readDirLocked(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if e.Name == name {
			return vfs.ErrExist
		}
	}
	entries = append(entries, vfs.RawDirEntry{Ino: uint64(ino), IsDir: isDir, Name: name})
	return fs.writeDirLocked(dir, entries)
}

func (fs *FS) removeEntryLocked(dir *inode, name string) (vfs.RawDirEntry, error) {
	entries, err := fs.readDirLocked(dir)
	if err != nil {
		return vfs.RawDirEntry{}, err
	}
	for i, e := range entries {
		if e.Name == name {
			entries = append(entries[:i], entries[i+1:]...)
			return e, fs.writeDirLocked(dir, entries)
		}
	}
	return vfs.RawDirEntry{}, vfs.ErrNotExist
}

// Create implements vfs.FileSystem.
func (fs *FS) Create(path string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, base, err := fs.nameiParentLocked(path)
	if err != nil {
		return nil, err
	}
	ino, err := fs.allocIno()
	if err != nil {
		return nil, err
	}
	in := &inode{ino: ino, mode: modeFile, nlink: 1, mtime: int64(fs.clock.Now()), dirty: true, refs: 1}
	fs.inodes[ino] = in
	if err := fs.addEntryLocked(dir, base, ino, false); err != nil {
		delete(fs.inodes, ino)
		delete(fs.usedSlots, ino)
		return nil, err
	}
	if err := fs.storeInodeLocked(in); err != nil {
		return nil, err
	}
	return &File{fs: fs, in: in}, nil
}

// Open implements vfs.FileSystem.
func (fs *FS) Open(path string) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.lookupLocked(path)
	if err != nil {
		return nil, err
	}
	if in.isDir() {
		return nil, vfs.ErrIsDir
	}
	in.refs++
	return &File{fs: fs, in: in}, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, base, err := fs.nameiParentLocked(path)
	if err != nil {
		return err
	}
	ino, err := fs.allocIno()
	if err != nil {
		return err
	}
	in := &inode{ino: ino, mode: modeDir, nlink: 2, mtime: int64(fs.clock.Now()), dirty: true}
	fs.inodes[ino] = in
	if err := fs.writeDirLocked(in, nil); err != nil {
		delete(fs.inodes, ino)
		delete(fs.usedSlots, ino)
		return err
	}
	if err := fs.addEntryLocked(dir, base, ino, true); err != nil {
		delete(fs.inodes, ino)
		delete(fs.usedSlots, ino)
		return err
	}
	return fs.storeInodeLocked(in)
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.lookupLocked(path)
	if err != nil {
		return nil, err
	}
	raw, err := fs.readDirLocked(in)
	if err != nil {
		return nil, err
	}
	vfs.SortDirEntries(raw)
	out := make([]vfs.DirEntry, len(raw))
	for i, e := range raw {
		out[i] = vfs.DirEntry{Name: e.Name, ID: vfs.FileID(e.Ino), IsDir: e.IsDir}
	}
	return out, nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.lookupLocked(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	_, base, _ := vfs.SplitDirBase(path)
	return vfs.FileInfo{
		Name:         base,
		ID:           vfs.FileID(in.ino),
		Size:         in.size,
		IsDir:        in.isDir(),
		TxnProtected: in.txnProtected(),
	}, nil
}

// Remove implements vfs.FileSystem.
func (fs *FS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, base, err := fs.nameiParentLocked(path)
	if err != nil {
		return err
	}
	entries, err := fs.readDirLocked(dir)
	if err != nil {
		return err
	}
	var target *vfs.RawDirEntry
	for i := range entries {
		if entries[i].Name == base {
			target = &entries[i]
			break
		}
	}
	if target == nil {
		return vfs.ErrNotExist
	}
	in, err := fs.loadInodeLocked(Ino(target.Ino))
	if err != nil {
		return err
	}
	if in.isDir() {
		sub, err := fs.readDirLocked(in)
		if err != nil {
			return err
		}
		if len(sub) > 0 {
			return vfs.ErrNotEmpty
		}
	}
	if in.refs > 0 {
		return fmt.Errorf("ffs: %s still open", path)
	}
	if _, err := fs.removeEntryLocked(dir, base); err != nil {
		return err
	}
	if err := fs.pool.InvalidateFile(vfs.FileID(in.ino)); err != nil {
		return err
	}
	fs.freeFileLocked(in)
	if err := fs.clearInodeSlotLocked(in.ino); err != nil {
		return err
	}
	delete(fs.inodes, in.ino)
	delete(fs.usedSlots, in.ino)
	return nil
}

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	oldDir, oldBase, err := fs.nameiParentLocked(oldPath)
	if err != nil {
		return err
	}
	newDir, newBase, err := fs.nameiParentLocked(newPath)
	if err != nil {
		return err
	}
	entry, err := fs.removeEntryLocked(oldDir, oldBase)
	if err != nil {
		return err
	}
	if err := fs.addEntryLocked(newDir, newBase, Ino(entry.Ino), entry.IsDir); err != nil {
		_ = fs.addEntryLocked(oldDir, oldBase, Ino(entry.Ino), entry.IsDir)
		return err
	}
	return nil
}

// SetTxnProtected sets or clears the transaction-protection attribute.
func (fs *FS) SetTxnProtected(path string, on bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	in, err := fs.lookupLocked(path)
	if err != nil {
		return err
	}
	if on {
		in.flags |= flagTxnProtected
	} else {
		in.flags &^= flagTxnProtected
	}
	in.dirty = true
	return fs.storeInodeLocked(in)
}
