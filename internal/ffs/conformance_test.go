package ffs_test

import (
	"testing"

	"repro/internal/disk"
	"repro/internal/ffs"
	"repro/internal/fstest"
	"repro/internal/sim"
	"repro/internal/vfs"
)

func TestConformance(t *testing.T) {
	fstest.Run(t, "ffs", func(t *testing.T) vfs.FileSystem {
		clk := sim.NewClock()
		dev := disk.New(sim.SmallModel(), clk)
		fsys, err := ffs.Format(dev, clk, ffs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return fsys
	})
}
