package ffs

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/vfs"
)

// File is an open file handle.
type File struct {
	fs     *FS
	in     *inode
	closed bool
}

var _ vfs.File = (*File)(nil)

// ID implements vfs.File.
func (f *File) ID() vfs.FileID { return vfs.FileID(f.in.ino) }

// Size implements vfs.File.
func (f *File) Size() (int64, error) {
	if f.closed {
		return 0, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.in.size, nil
}

// Close implements vfs.File.
func (f *File) Close() error {
	if f.closed {
		return vfs.ErrFileClosed
	}
	f.closed = true
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.in.refs--
	return nil
}

// Sync implements vfs.File: flush the file's dirty blocks and its inode.
func (f *File) Sync() error {
	if f.closed {
		return vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	ino := f.in.ino
	if err := f.fs.flushDirtyLocked(&ino); err != nil {
		return err
	}
	if f.in.dirty {
		return f.fs.storeInodeLocked(f.in)
	}
	return nil
}

// ReadAt implements vfs.File.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.maybeSyncerLocked(); err != nil {
		return 0, err
	}
	return f.fs.readAtLocked(f.in, p, off)
}

// WriteAt implements vfs.File.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.maybeSyncerLocked(); err != nil {
		return 0, err
	}
	return f.fs.writeAtLocked(f.in, p, off)
}

// Truncate implements vfs.File.
func (f *File) Truncate(size int64) error {
	if f.closed {
		return vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.truncateLocked(f.in, size)
}

// TxnProtected reports the transaction-protection attribute.
func (f *File) TxnProtected() bool {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.in.txnProtected()
}

// GetPage pins the buffer for logical block lbn (see lfs.File.GetPage).
func (f *File) GetPage(lbn int64) (*buffer.Buf, error) {
	if f.closed {
		return nil, vfs.ErrFileClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return f.fs.pool.Get(buffer.BlockID{File: vfs.FileID(f.in.ino), Block: lbn}, f.fs.fetchBlock)
}

func (fs *FS) readAtLocked(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ffs: negative offset %d", off)
	}
	if off >= in.size {
		return 0, nil
	}
	if max := in.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	bs := int64(fs.blockSize)
	n := 0
	for n < len(p) {
		lbn := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		want := len(p) - n
		if avail := int(bs - bo); want > avail {
			want = avail
		}
		b, err := fs.pool.Get(buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn}, fs.fetchBlock)
		if err != nil {
			return n, err
		}
		copy(p[n:n+want], b.Data[bo:])
		fs.pool.Release(b)
		n += want
	}
	return n, nil
}

// ensureMapped allocates blocks (contiguously when possible) so lbn is
// mapped, zero-filling any newly created intermediate blocks.
func (fs *FS) ensureMapped(in *inode, lbn int64) error {
	for in.blocks() <= lbn {
		prefer := int64(0)
		if n := len(in.extents); n > 0 {
			last := in.extents[n-1]
			prefer = last.Start + last.Len
		}
		addr, err := fs.allocBlock(prefer)
		if err != nil {
			return err
		}
		in.appendBlock(addr)
		in.dirty = true
	}
	return nil
}

func (fs *FS) writeAtLocked(in *inode, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ffs: negative offset %d", off)
	}
	bs := int64(fs.blockSize)
	lastLBN := (off + int64(len(p)) - 1) / bs
	if err := fs.ensureMapped(in, lastLBN); err != nil {
		return 0, err
	}
	n := 0
	for n < len(p) {
		lbn := (off + int64(n)) / bs
		bo := (off + int64(n)) % bs
		want := len(p) - n
		if avail := int(bs - bo); want > avail {
			want = avail
		}
		var fetch buffer.Fetch
		if !(bo == 0 && want == int(bs)) {
			fetch = fs.fetchBlock
		}
		b, err := fs.pool.Get(buffer.BlockID{File: vfs.FileID(in.ino), Block: lbn}, fetch)
		if err != nil {
			return n, err
		}
		copy(b.Data[bo:], p[n:n+want])
		fs.pool.MarkDirty(b)
		fs.pool.Release(b)
		n += want
	}
	if end := off + int64(len(p)); end > in.size {
		in.size = end
	}
	in.mtime = int64(fs.clock.Now())
	in.dirty = true
	return n, nil
}

func (fs *FS) truncateLocked(in *inode, size int64) error {
	if size < 0 {
		return fmt.Errorf("ffs: negative truncate size %d", size)
	}
	bs := int64(fs.blockSize)
	if size < in.size {
		keep := (size + bs - 1) / bs
		// Free whole blocks past the new end.
		for in.blocks() > keep {
			n := len(in.extents)
			last := &in.extents[n-1]
			fs.freeBlock(last.Start + last.Len - 1)
			last.Len--
			blkNo := in.blocks()
			_ = fs.pool.Invalidate(buffer.BlockID{File: vfs.FileID(in.ino), Block: blkNo})
			if last.Len == 0 {
				in.extents = in.extents[:n-1]
			}
		}
		// Zero the tail of the final block.
		if size%bs != 0 {
			id := buffer.BlockID{File: vfs.FileID(in.ino), Block: size / bs}
			b, err := fs.pool.Get(id, fs.fetchBlock)
			if err != nil {
				return err
			}
			for i := size % bs; i < bs; i++ {
				b.Data[i] = 0
			}
			fs.pool.MarkDirty(b)
			fs.pool.Release(b)
		}
	}
	in.size = size
	in.dirty = true
	return nil
}

// freeFileLocked releases all of a file's blocks and overflow chain.
func (fs *FS) freeFileLocked(in *inode) {
	for _, e := range in.extents {
		for b := e.Start; b < e.Start+e.Len; b++ {
			fs.freeBlock(b)
		}
	}
	for _, b := range in.overflow {
		fs.freeBlock(b)
	}
	in.extents = nil
	in.overflow = nil
}
