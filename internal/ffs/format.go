// Package ffs implements the read-optimized, update-in-place file system the
// paper uses as its baseline (the original Sprite file system, an FFS-style
// design [8]). Files are allocated in contiguous extents so sequential reads
// stay fast; blocks keep their disk addresses for life, so every re-write
// lands on the same (usually distant) block — and dirty pages sit in the
// buffer cache for up to thirty seconds before the syncer pushes them out
// through a C-SCAN-sorted disk queue alongside the workload's random reads
// (§5.1 of the paper).
package ffs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Ino is an inode number. Inode numbers index the fixed inode table.
type Ino uint64

// RootIno is the root directory's inode number.
const RootIno Ino = 1

const (
	superMagic = 0x46465331 // "FFS1"

	// inodeSlotSize is the on-disk footprint of one inode.
	inodeSlotSize = 256
	// inlineExtents is the number of extents stored in the inode itself.
	inlineExtents = 12

	// defaultMaxInodes sizes the inode table.
	defaultMaxInodes = 4096
)

// Errors.
var (
	ErrNoSpace  = errors.New("ffs: no space left on device")
	ErrNoInodes = errors.New("ffs: inode table full")
	ErrCorrupt  = errors.New("ffs: corrupt on-disk structure")
)

// extent is a contiguous run of blocks covering consecutive logical blocks.
type extent struct {
	Start int64
	Len   int64
}

// superblock (block 0).
type superblock struct {
	Magic       uint32
	BlockSize   uint32
	TotalBlocks int64
	BitmapStart int64
	BitmapLen   int64
	InodeStart  int64
	InodeLen    int64
	DataStart   int64
	MaxInodes   int64
	NextIno     int64 // persisted allocation hint
}

func (sb *superblock) encode(blockSize int) []byte {
	b := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.Magic)
	le.PutUint32(b[4:], sb.BlockSize)
	le.PutUint64(b[8:], uint64(sb.TotalBlocks))
	le.PutUint64(b[16:], uint64(sb.BitmapStart))
	le.PutUint64(b[24:], uint64(sb.BitmapLen))
	le.PutUint64(b[32:], uint64(sb.InodeStart))
	le.PutUint64(b[40:], uint64(sb.InodeLen))
	le.PutUint64(b[48:], uint64(sb.DataStart))
	le.PutUint64(b[56:], uint64(sb.MaxInodes))
	le.PutUint64(b[64:], uint64(sb.NextIno))
	le.PutUint32(b[72:], crc32.ChecksumIEEE(b[0:72]))
	return b
}

func decodeSuperblock(b []byte) (superblock, error) {
	var sb superblock
	if len(b) < 76 {
		return sb, fmt.Errorf("%w: short superblock", ErrCorrupt)
	}
	le := binary.LittleEndian
	if le.Uint32(b[72:]) != crc32.ChecksumIEEE(b[0:72]) {
		return sb, fmt.Errorf("%w: superblock checksum", ErrCorrupt)
	}
	sb.Magic = le.Uint32(b[0:])
	if sb.Magic != superMagic {
		return sb, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	sb.BlockSize = le.Uint32(b[4:])
	sb.TotalBlocks = int64(le.Uint64(b[8:]))
	sb.BitmapStart = int64(le.Uint64(b[16:]))
	sb.BitmapLen = int64(le.Uint64(b[24:]))
	sb.InodeStart = int64(le.Uint64(b[32:]))
	sb.InodeLen = int64(le.Uint64(b[40:]))
	sb.DataStart = int64(le.Uint64(b[48:]))
	sb.MaxInodes = int64(le.Uint64(b[56:]))
	sb.NextIno = int64(le.Uint64(b[64:]))
	return sb, nil
}

// File modes and flags.
const (
	modeFile uint32 = 1
	modeDir  uint32 = 2

	flagTxnProtected uint32 = 1 << 0
)

// inode is the in-memory inode.
type inode struct {
	ino     Ino
	mode    uint32
	flags   uint32
	size    int64
	nlink   uint32
	mtime   int64
	extents []extent // all extents, inline + overflow
	// overflow chain blocks currently allocated on disk
	overflow []int64
	dirty    bool
	refs     int
}

func (in *inode) isDir() bool        { return in.mode == modeDir }
func (in *inode) txnProtected() bool { return in.flags&flagTxnProtected != 0 }

// blocks returns the number of allocated blocks.
func (in *inode) blocks() int64 {
	var n int64
	for _, e := range in.extents {
		n += e.Len
	}
	return n
}

// mapBlock returns the disk address of logical block lbn, or 0 if
// unallocated.
func (in *inode) mapBlock(lbn int64) int64 {
	var cum int64
	for _, e := range in.extents {
		if lbn < cum+e.Len {
			return e.Start + (lbn - cum)
		}
		cum += e.Len
	}
	return 0
}

// appendBlock extends the mapping by one block at addr, merging with the
// last extent when contiguous.
func (in *inode) appendBlock(addr int64) {
	if n := len(in.extents); n > 0 {
		last := &in.extents[n-1]
		if last.Start+last.Len == addr {
			last.Len++
			return
		}
	}
	in.extents = append(in.extents, extent{Start: addr, Len: 1})
}

// encodeSlot serializes the inode's fixed part into a 256-byte slot.
// Layout: used(1) pad(3) mode(4) flags(4) nlink(4) size(8) mtime(8)
// nextents(4) pad(4) inline extents 12×(start 8, len 8) overflowPtr(8).
func (in *inode) encodeSlot() []byte {
	b := make([]byte, inodeSlotSize)
	le := binary.LittleEndian
	b[0] = 1
	le.PutUint32(b[4:], in.mode)
	le.PutUint32(b[8:], in.flags)
	le.PutUint32(b[12:], in.nlink)
	le.PutUint64(b[16:], uint64(in.size))
	le.PutUint64(b[24:], uint64(in.mtime))
	le.PutUint32(b[32:], uint32(len(in.extents)))
	off := 40
	for i := 0; i < inlineExtents && i < len(in.extents); i++ {
		le.PutUint64(b[off:], uint64(in.extents[i].Start))
		le.PutUint64(b[off+8:], uint64(in.extents[i].Len))
		off += 16
	}
	ovp := int64(0)
	if len(in.overflow) > 0 {
		ovp = in.overflow[0]
	}
	le.PutUint64(b[40+inlineExtents*16:], uint64(ovp))
	return b
}

// decodeSlot parses an inode slot; used=false means a free slot.
func decodeSlot(b []byte, ino Ino) (*inode, bool) {
	if b[0] == 0 {
		return nil, false
	}
	le := binary.LittleEndian
	in := &inode{ino: ino}
	in.mode = le.Uint32(b[4:])
	in.flags = le.Uint32(b[8:])
	in.nlink = le.Uint32(b[12:])
	in.size = int64(le.Uint64(b[16:]))
	in.mtime = int64(le.Uint64(b[24:]))
	n := int(le.Uint32(b[32:]))
	off := 40
	for i := 0; i < inlineExtents && i < n; i++ {
		in.extents = append(in.extents, extent{
			Start: int64(le.Uint64(b[off:])),
			Len:   int64(le.Uint64(b[off+8:])),
		})
		off += 16
	}
	ovp := int64(le.Uint64(b[40+inlineExtents*16:]))
	if ovp != 0 {
		in.overflow = []int64{ovp} // remaining chain read by caller
	}
	return in, true
}

// Overflow extent block layout: next(8) count(4) pad(4) extents ×(start 8, len 8).
func overflowCapacity(blockSize int) int { return (blockSize - 16) / 16 }

func encodeOverflow(blockSize int, next int64, exts []extent) []byte {
	b := make([]byte, blockSize)
	le := binary.LittleEndian
	le.PutUint64(b[0:], uint64(next))
	le.PutUint32(b[8:], uint32(len(exts)))
	off := 16
	for _, e := range exts {
		le.PutUint64(b[off:], uint64(e.Start))
		le.PutUint64(b[off+8:], uint64(e.Len))
		off += 16
	}
	return b
}

func decodeOverflow(b []byte) (next int64, exts []extent) {
	le := binary.LittleEndian
	next = int64(le.Uint64(b[0:]))
	n := int(le.Uint32(b[8:]))
	off := 16
	for i := 0; i < n; i++ {
		exts = append(exts, extent{
			Start: int64(le.Uint64(b[off:])),
			Len:   int64(le.Uint64(b[off+8:])),
		})
		off += 16
	}
	return next, exts
}
