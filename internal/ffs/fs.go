package ffs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/detsort"
	"repro/internal/disk"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Options configures the file system.
type Options struct {
	// MaxInodes sizes the fixed inode table (default 4096).
	MaxInodes int64
	// CacheBlocks is the buffer cache capacity (default 1024).
	CacheBlocks int
	// SyncInterval is the delayed-write age limit (default 30 s, the
	// classic UNIX syncer interval the paper cites).
	SyncInterval time.Duration
}

func (o *Options) fill() {
	if o.MaxInodes == 0 {
		o.MaxInodes = defaultMaxInodes
	}
	if o.CacheBlocks == 0 {
		o.CacheBlocks = 1024
	}
	if o.SyncInterval == 0 {
		o.SyncInterval = 30 * time.Second
	}
}

// Stats reports file system activity.
type Stats struct {
	SyncerRuns    int64 // periodic delayed-write flushes
	BlocksFlushed int64 // blocks pushed out by the syncer
}

// FS is a mounted read-optimized file system.
type FS struct {
	mu        sync.Mutex
	dev       disk.BlockDevice
	clock     *sim.Clock
	pool      *buffer.Pool
	queue     *disk.Queue
	blockSize int
	sb        superblock
	opts      Options

	bitmap     []uint64
	inodes     map[Ino]*inode // loaded inodes
	usedSlots  map[Ino]bool   // allocated inode numbers
	nextIno    Ino
	cursor     int64 // rotating allocation cursor
	lastSyncer time.Duration
	// tableCache holds inode-table blocks (write-through), as the real
	// FFS caches inode blocks in the buffer cache: commit-time fsyncs
	// rewrite an inode without re-reading its table block from disk.
	tableCache map[int64][]byte
	stats      Stats
}

// readTableBlock returns a cached inode-table block, reading it once.
func (fs *FS) readTableBlock(blk int64) ([]byte, error) {
	if b, ok := fs.tableCache[blk]; ok {
		return b, nil
	}
	b := make([]byte, fs.blockSize)
	if err := fs.dev.Read(blk, b); err != nil {
		return nil, err
	}
	fs.tableCache[blk] = b
	return b, nil
}

// writeTableBlock persists a table block write-through.
func (fs *FS) writeTableBlock(blk int64, b []byte) error {
	fs.tableCache[blk] = b
	return fs.dev.Write(blk, b)
}

var _ vfs.FileSystem = (*FS)(nil)

// Format initializes a fresh file system on dev and returns it mounted.
func Format(dev disk.BlockDevice, clock *sim.Clock, opts Options) (*FS, error) {
	opts.fill()
	bs := dev.BlockSize()
	total := dev.NumBlocks()
	bitmapLen := (total + int64(bs)*8 - 1) / (int64(bs) * 8)
	slotsPerBlock := int64(bs / inodeSlotSize)
	inodeLen := (opts.MaxInodes + slotsPerBlock - 1) / slotsPerBlock
	sb := superblock{
		Magic:       superMagic,
		BlockSize:   uint32(bs),
		TotalBlocks: total,
		BitmapStart: 1,
		BitmapLen:   bitmapLen,
		InodeStart:  1 + bitmapLen,
		InodeLen:    inodeLen,
		DataStart:   1 + bitmapLen + inodeLen,
		MaxInodes:   opts.MaxInodes,
		NextIno:     int64(RootIno) + 1,
	}
	if sb.DataStart >= total {
		return nil, fmt.Errorf("ffs: device too small")
	}
	fs := &FS{
		dev:        dev,
		clock:      clock,
		blockSize:  bs,
		sb:         sb,
		opts:       opts,
		bitmap:     make([]uint64, (total+63)/64),
		inodes:     make(map[Ino]*inode),
		usedSlots:  map[Ino]bool{},
		nextIno:    RootIno + 1,
		cursor:     sb.DataStart,
		tableCache: map[int64][]byte{},
	}
	// Mark the metadata area allocated.
	for b := int64(0); b < sb.DataStart; b++ {
		fs.setBit(b)
	}
	fs.pool = buffer.New(opts.CacheBlocks, bs, fs.writeback)
	fs.queue = disk.NewQueue(dev)

	root := &inode{ino: RootIno, mode: modeDir, nlink: 2, dirty: true}
	fs.inodes[RootIno] = root
	fs.usedSlots[RootIno] = true
	if err := fs.writeDirLocked(root, nil); err != nil {
		return nil, err
	}
	if err := fs.syncLocked(); err != nil {
		return nil, err
	}
	return fs, nil
}

// Mount loads an existing file system.
func Mount(dev disk.BlockDevice, clock *sim.Clock, opts Options) (*FS, error) {
	opts.fill()
	bs := dev.BlockSize()
	buf := make([]byte, bs)
	if err := dev.Read(0, buf); err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(buf)
	if err != nil {
		return nil, err
	}
	fs := &FS{
		dev:        dev,
		clock:      clock,
		blockSize:  bs,
		sb:         sb,
		opts:       opts,
		bitmap:     make([]uint64, (sb.TotalBlocks+63)/64),
		inodes:     make(map[Ino]*inode),
		usedSlots:  map[Ino]bool{},
		nextIno:    Ino(sb.NextIno),
		cursor:     sb.DataStart,
		tableCache: map[int64][]byte{},
	}
	// Load the bitmap.
	for i := int64(0); i < sb.BitmapLen; i++ {
		if err := dev.Read(sb.BitmapStart+i, buf); err != nil {
			return nil, err
		}
		base := i * int64(bs) / 8
		for w := 0; w < bs/8 && base+int64(w) < int64(len(fs.bitmap)); w++ {
			var v uint64
			for b := 0; b < 8; b++ {
				v |= uint64(buf[w*8+b]) << (8 * b)
			}
			fs.bitmap[base+int64(w)] = v
		}
	}
	// Scan the inode table for used slots (inodes load lazily).
	slotsPerBlock := bs / inodeSlotSize
	for i := int64(0); i < sb.InodeLen; i++ {
		if err := dev.Read(sb.InodeStart+i, buf); err != nil {
			return nil, err
		}
		for s := 0; s < slotsPerBlock; s++ {
			ino := Ino(i*int64(slotsPerBlock)+int64(s)) + 1
			if ino > Ino(sb.MaxInodes) {
				break
			}
			if buf[s*inodeSlotSize] == 1 {
				fs.usedSlots[ino] = true
			}
		}
	}
	fs.pool = buffer.New(opts.CacheBlocks, bs, fs.writeback)
	fs.queue = disk.NewQueue(dev)
	return fs, nil
}

// Name implements vfs.FileSystem.
func (fs *FS) Name() string { return "ffs" }

// BlockSize implements vfs.FileSystem.
func (fs *FS) BlockSize() int { return fs.blockSize }

// Pool exposes the buffer cache (for tests and the transaction layers).
func (fs *FS) Pool() *buffer.Pool { return fs.pool }

// Device returns the underlying block device.
func (fs *FS) Device() disk.BlockDevice { return fs.dev }

// Stats returns a snapshot of the counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// --- bitmap allocator ---

func (fs *FS) setBit(b int64)   { fs.bitmap[b/64] |= 1 << (uint(b) % 64) }
func (fs *FS) clearBit(b int64) { fs.bitmap[b/64] &^= 1 << (uint(b) % 64) }
func (fs *FS) bit(b int64) bool { return fs.bitmap[b/64]&(1<<(uint(b)%64)) != 0 }

// allocBlock allocates one block, preferring `prefer` (for contiguity) and
// otherwise scanning from the rotating cursor.
func (fs *FS) allocBlock(prefer int64) (int64, error) {
	if prefer >= fs.sb.DataStart && prefer < fs.sb.TotalBlocks && !fs.bit(prefer) {
		fs.setBit(prefer)
		return prefer, nil
	}
	n := fs.sb.TotalBlocks
	for i := int64(0); i < n; i++ {
		b := fs.cursor + i
		if b >= n {
			b = fs.sb.DataStart + (b - n)
		}
		if b < fs.sb.DataStart {
			continue
		}
		if !fs.bit(b) {
			fs.setBit(b)
			fs.cursor = b + 1
			return b, nil
		}
	}
	return 0, ErrNoSpace
}

func (fs *FS) freeBlock(b int64) {
	if b >= fs.sb.DataStart && b < fs.sb.TotalBlocks {
		fs.clearBit(b)
	}
}

// --- buffer cache plumbing ---

// writeback persists an evicted dirty block in place.
func (fs *FS) writeback(id buffer.BlockID, data []byte) error {
	in, err := fs.loadInodeLocked(Ino(id.File))
	if err != nil {
		return err
	}
	addr := in.mapBlock(id.Block)
	if addr == 0 {
		return fmt.Errorf("ffs: writeback of unmapped block %v", id)
	}
	return fs.dev.Write(addr, data)
}

// fetchBlock loads a block on cache miss.
func (fs *FS) fetchBlock(id buffer.BlockID, dst []byte) error {
	in, err := fs.loadInodeLocked(Ino(id.File))
	if err != nil {
		return err
	}
	addr := in.mapBlock(id.Block)
	if addr == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	return fs.dev.Read(addr, dst)
}

// maybeSyncerLocked models the 30-second update daemon: when the interval
// has elapsed, push all dirty buffers out through the C-SCAN-sorted queue.
func (fs *FS) maybeSyncerLocked() error {
	now := fs.clock.Now()
	if now-fs.lastSyncer < fs.opts.SyncInterval {
		return nil
	}
	fs.lastSyncer = now
	return fs.flushDirtyLocked(nil)
}

// flushDirtyLocked pushes dirty (unheld) buffers — all of them, or just one
// file's — through the sorted disk queue.
func (fs *FS) flushDirtyLocked(only *Ino) error {
	dirty := fs.pool.Dirty()
	if len(dirty) == 0 {
		return nil
	}
	n := 0
	for _, b := range dirty {
		if only != nil && Ino(b.ID.File) != *only {
			continue
		}
		in, err := fs.loadInodeLocked(Ino(b.ID.File))
		if err != nil {
			return err
		}
		addr := in.mapBlock(b.ID.Block)
		if addr == 0 {
			return fmt.Errorf("ffs: dirty unmapped block %v", b.ID)
		}
		fs.queue.EnqueueWrite(addr, b.Data)
		fs.pool.MarkClean(b)
		n++
	}
	if n == 0 {
		return nil
	}
	fs.stats.SyncerRuns++
	fs.stats.BlocksFlushed += int64(n)
	return fs.queue.FlushSorted()
}

// --- inode table persistence ---

func (fs *FS) inodeTableBlock(ino Ino) (blk int64, slot int) {
	idx := int64(ino - 1)
	spb := int64(fs.blockSize / inodeSlotSize)
	return fs.sb.InodeStart + idx/spb, int(idx % spb)
}

// loadInodeLocked reads an inode (and its overflow extent chain) from disk.
func (fs *FS) loadInodeLocked(ino Ino) (*inode, error) {
	if in, ok := fs.inodes[ino]; ok {
		return in, nil
	}
	if ino < 1 || int64(ino) > fs.sb.MaxInodes {
		return nil, vfs.ErrNotExist
	}
	blk, slot := fs.inodeTableBlock(ino)
	buf, err := fs.readTableBlock(blk)
	if err != nil {
		return nil, err
	}
	in, ok := decodeSlot(buf[slot*inodeSlotSize:(slot+1)*inodeSlotSize], ino)
	if !ok {
		return nil, vfs.ErrNotExist
	}
	// Follow the overflow chain.
	if len(in.overflow) > 0 {
		next := in.overflow[0]
		in.overflow = in.overflow[:0]
		for next != 0 {
			in.overflow = append(in.overflow, next)
			if err := fs.dev.Read(next, buf); err != nil {
				return nil, err
			}
			var exts []extent
			next, exts = decodeOverflow(buf)
			in.extents = append(in.extents, exts...)
		}
	}
	fs.inodes[ino] = in
	return in, nil
}

// storeInodeLocked writes an inode slot (and overflow chain) to disk.
func (fs *FS) storeInodeLocked(in *inode) error {
	// Lay out overflow chain for extents beyond the inline dozen.
	rest := []extent(nil)
	if len(in.extents) > inlineExtents {
		rest = in.extents[inlineExtents:]
	}
	capPer := overflowCapacity(fs.blockSize)
	needed := (len(rest) + capPer - 1) / capPer
	for len(in.overflow) < needed {
		b, err := fs.allocBlock(0)
		if err != nil {
			return err
		}
		in.overflow = append(in.overflow, b)
	}
	for len(in.overflow) > needed {
		last := in.overflow[len(in.overflow)-1]
		fs.freeBlock(last)
		in.overflow = in.overflow[:len(in.overflow)-1]
	}
	for i := 0; i < needed; i++ {
		lo := i * capPer
		hi := lo + capPer
		if hi > len(rest) {
			hi = len(rest)
		}
		next := int64(0)
		if i+1 < needed {
			next = in.overflow[i+1]
		}
		if err := fs.dev.Write(in.overflow[i], encodeOverflow(fs.blockSize, next, rest[lo:hi])); err != nil {
			return err
		}
	}
	blk, slot := fs.inodeTableBlock(in.ino)
	buf, err := fs.readTableBlock(blk)
	if err != nil {
		return err
	}
	copy(buf[slot*inodeSlotSize:], in.encodeSlot())
	if err := fs.writeTableBlock(blk, buf); err != nil {
		return err
	}
	in.dirty = false
	return nil
}

// clearInodeSlotLocked marks an inode slot free on disk.
func (fs *FS) clearInodeSlotLocked(ino Ino) error {
	blk, slot := fs.inodeTableBlock(ino)
	buf, err := fs.readTableBlock(blk)
	if err != nil {
		return err
	}
	for i := 0; i < inodeSlotSize; i++ {
		buf[slot*inodeSlotSize+i] = 0
	}
	return fs.writeTableBlock(blk, buf)
}

// --- Sync ---

// Sync implements vfs.FileSystem: flush data, inodes, bitmap, superblock.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncLocked()
}

func (fs *FS) syncLocked() error {
	if err := fs.flushDirtyLocked(nil); err != nil {
		return err
	}
	for _, ino := range detsort.Keys(fs.inodes) {
		if in := fs.inodes[ino]; in.dirty {
			if err := fs.storeInodeLocked(in); err != nil {
				return err
			}
		}
	}
	// Bitmap.
	bs := fs.blockSize
	for i := int64(0); i < fs.sb.BitmapLen; i++ {
		buf := make([]byte, bs)
		base := i * int64(bs) / 8
		for w := 0; w < bs/8 && base+int64(w) < int64(len(fs.bitmap)); w++ {
			v := fs.bitmap[base+int64(w)]
			for b := 0; b < 8; b++ {
				buf[w*8+b] = byte(v >> (8 * b))
			}
		}
		fs.queue.EnqueueWrite(fs.sb.BitmapStart+i, buf)
	}
	if err := fs.queue.FlushSorted(); err != nil {
		return err
	}
	fs.sb.NextIno = int64(fs.nextIno)
	return fs.dev.Write(0, fs.sb.encode(bs))
}

// allocIno finds a free inode number.
func (fs *FS) allocIno() (Ino, error) {
	for i := int64(0); i < fs.sb.MaxInodes; i++ {
		ino := fs.nextIno
		fs.nextIno++
		if int64(fs.nextIno) > fs.sb.MaxInodes {
			fs.nextIno = RootIno + 1
		}
		if ino >= 1 && int64(ino) <= fs.sb.MaxInodes && !fs.usedSlots[ino] {
			fs.usedSlots[ino] = true
			return ino, nil
		}
	}
	return 0, ErrNoInodes
}
