package ffs

import (
	"fmt"

	"repro/internal/detsort"
)

// FsckReport summarizes what crash recovery had to repair.
type FsckReport struct {
	Inodes       int64 // inodes walked
	UsedBlocks   int64 // blocks referenced by the inode table (incl. metadata area)
	LostBlocks   int64 // referenced but marked free in the on-disk bitmap (reclaimed leaks)
	LeakedBlocks int64 // marked used on disk but referenced by nothing (freed)
	CrossLinked  int64 // blocks claimed by more than one owner (reported, first owner wins)
}

// OK reports whether the on-disk state needed no repair.
func (r *FsckReport) OK() bool {
	return r.LostBlocks == 0 && r.LeakedBlocks == 0 && r.CrossLinked == 0
}

// Fsck rebuilds the allocation bitmap from the inode table and persists the
// result. It is the FFS leg of crash recovery: data blocks and inode-table
// blocks are written through (or flushed at commit), but the bitmap and
// superblock reach the disk only at Sync, so after a crash the bitmap is
// stale — typically missing allocations made since the last sync. Replaying
// the WAL on top of a stale bitmap could hand freshly "free" blocks that
// actually hold committed data to new allocations, so Fsck must run after
// Mount and before WAL recovery.
//
// The inode table is authoritative: every used slot's extents and overflow
// chain mark their blocks allocated; everything else outside the metadata
// area is free.
func (fs *FS) Fsck() (*FsckReport, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()

	rep := &FsckReport{}
	rebuilt := make([]uint64, len(fs.bitmap))
	set := func(b int64) bool {
		if rebuilt[b/64]&(1<<(uint(b)%64)) != 0 {
			return false
		}
		rebuilt[b/64] |= 1 << (uint(b) % 64)
		rep.UsedBlocks++
		return true
	}
	// Metadata area: superblock, bitmap, inode table.
	for b := int64(0); b < fs.sb.DataStart; b++ {
		set(b)
	}
	for _, ino := range detsort.Keys(fs.usedSlots) {
		in, err := fs.loadInodeLocked(ino)
		if err != nil {
			return nil, fmt.Errorf("ffs: fsck of inode %d: %w", ino, err)
		}
		rep.Inodes++
		for _, b := range in.overflow {
			if b < fs.sb.DataStart || b >= fs.sb.TotalBlocks {
				return nil, fmt.Errorf("ffs: fsck: inode %d overflow block %d out of range", ino, b)
			}
			if !set(b) {
				rep.CrossLinked++
			}
		}
		for _, e := range in.extents {
			if e.Start < fs.sb.DataStart || e.Start+e.Len > fs.sb.TotalBlocks || e.Len < 0 {
				return nil, fmt.Errorf("ffs: fsck: inode %d extent [%d,+%d) out of range", ino, e.Start, e.Len)
			}
			for b := e.Start; b < e.Start+e.Len; b++ {
				if !set(b) {
					rep.CrossLinked++
				}
			}
		}
	}
	// Diff against the (possibly stale) bitmap loaded at mount.
	for b := int64(0); b < fs.sb.TotalBlocks; b++ {
		was := fs.bit(b)
		is := rebuilt[b/64]&(1<<(uint(b)%64)) != 0
		switch {
		case is && !was:
			rep.LostBlocks++
		case !is && was:
			rep.LeakedBlocks++
		}
	}
	fs.bitmap = rebuilt
	fs.cursor = fs.sb.DataStart
	// Persist the repaired bitmap (and superblock) so a second crash during
	// recovery finds a consistent picture.
	if err := fs.syncLocked(); err != nil {
		return nil, err
	}
	return rep, nil
}
