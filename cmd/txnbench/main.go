// Command txnbench regenerates the paper's evaluation figures (Figures 4–7
// of "Transaction Support in a Log-Structured File System", Seltzer, ICDE
// 1993) and the ablations described in DESIGN.md, printing each as a table
// next to the paper's reference numbers.
//
// Usage:
//
//	txnbench -fig all                 # everything at the default scale
//	txnbench -fig 4 -scale 0.1 -txns 10000
//	txnbench -fig 6                   # SCAN test + crossover (Figures 6 and 7)
//	txnbench -fig sync|cleaner|groupcommit|commitbytes|policy
//
// All elapsed times are simulated: the workloads run on a simulated RZ55
// disk with a DECstation-like CPU cost model (see internal/sim).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 4, 5, 6, 7, sync, cleaner, groupcommit, commitbytes, policy, all")
	scale := flag.Float64("scale", 0.05, "TPC-B scale factor (1.0 = the paper's 1,000,000 accounts)")
	txns := flag.Int("txns", 5000, "transactions per measured run")
	flag.Parse()

	opts := figures.Options{Scale: *scale, Txns: *txns}

	type job struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	jobs := map[string]job{
		"4": {"Figure 4", func() (fmt.Stringer, error) { return figures.Figure4(opts) }},
		"5": {"Figure 5", func() (fmt.Stringer, error) { return figures.Figure5(opts) }},
		"6": {"Figures 6+7", func() (fmt.Stringer, error) { return figures.Figure67(opts) }},
		"7": {"Figures 6+7", func() (fmt.Stringer, error) { return figures.Figure67(opts) }},
		"sync": {"Sync ablation", func() (fmt.Stringer, error) {
			return figures.AblationSync(opts)
		}},
		"cleaner": {"Cleaner ablation", func() (fmt.Stringer, error) {
			return figures.AblationCleaner(opts)
		}},
		"groupcommit": {"Group-commit ablation", func() (fmt.Stringer, error) {
			return figures.AblationGroupCommit(opts)
		}},
		"commitbytes": {"Commit-volume ablation", func() (fmt.Stringer, error) {
			return figures.AblationCommitBytes(opts)
		}},
		"policy": {"Cleaner-policy ablation", func() (fmt.Stringer, error) {
			return figures.AblationCleanerPolicy(opts)
		}},
	}

	var order []string
	if *fig == "all" {
		order = []string{"4", "5", "6", "sync", "cleaner", "groupcommit", "commitbytes", "policy"}
	} else {
		if _, ok := jobs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "txnbench: unknown figure %q\n", *fig)
			flag.Usage()
			os.Exit(2)
		}
		order = []string{*fig}
	}

	for i, key := range order {
		rep, err := jobs[key].run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "txnbench: %s: %v\n", jobs[key].name, err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(rep.String())
	}
}
