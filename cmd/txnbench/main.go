// Command txnbench regenerates the paper's evaluation figures (Figures 4–7
// of "Transaction Support in a Log-Structured File System", Seltzer, ICDE
// 1993) and the ablations described in DESIGN.md, printing each as a table
// next to the paper's reference numbers.
//
// Usage:
//
//	txnbench -fig all                 # everything at the default scale
//	txnbench -fig 4 -scale 0.1 -txns 10000
//	txnbench -fig 6                   # SCAN test + crossover (Figures 6 and 7)
//	txnbench -fig sync|cleaner|groupcommit|commitbytes|policy
//	txnbench -fig mpl                 # TPS vs multiprogramming level (not in "all")
//	txnbench -fig devices -devices 1,2,4   # TPS vs MPL vs spindle count (not in "all")
//	txnbench -fig cleaner -json       # machine-readable output
//	txnbench -fig 4 -cleaner idle -cleanbatch 8
//	txnbench -fig bench -metrics BENCH_tpcb.json -trace trace.json
//	txnbench -fig scan -scanners 2 -scans 1 -metrics BENCH_scan.json   # MVCC snapshot scans vs locking (not in "all")
//	txnbench -fig 4 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// All elapsed times are simulated: the workloads run on a simulated RZ55
// disk with a DECstation-like CPU cost model (see internal/sim).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/figures"
)

func main() {
	fig := flag.String("fig", "all", "figure to reproduce: 4, 5, 6, 7, sync, cleaner, groupcommit, commitbytes, policy, mpl, devices, scan, all")
	scale := flag.Float64("scale", 0.05, "TPC-B scale factor (1.0 = the paper's 1,000,000 accounts)")
	txns := flag.Int("txns", 5000, "transactions per measured run")
	cleaner := flag.String("cleaner", "", "override the LFS cleaning discipline for all rigs: sync or idle (default: each system's natural mode)")
	cleanBatch := flag.Int("cleanbatch", 0, "victims per batched cleaning pass (0 = LFS default)")
	logSeg := flag.Int64("logseg", 0, "WAL segment rotation threshold in payload bytes for the user-level systems (0 = wal default)")
	logRetain := flag.Bool("logretain", false, "archive dead WAL segments at checkpoint instead of deleting them")
	jsonOut := flag.Bool("json", false, "emit each report as a JSON object instead of a table")
	traceOut := flag.String("trace", "", "with -fig bench: write the kernel-lfs run's Chrome trace-event JSON (open at ui.perfetto.dev)")
	metricsOut := flag.String("metrics", "", "with -fig bench: write the full snapshot sweep as one JSON document")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the figure runs (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the figure runs (go tool pprof)")
	devicesFlag := flag.String("devices", "1,2,4", "with -fig devices: comma-separated device counts to sweep")
	scanners := flag.Int("scanners", 0, "with -fig scan: concurrent scan clients (0 = default 2)")
	scansEach := flag.Int("scans", 0, "with -fig scan: full account scans per scan client (0 = default 1)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "txnbench: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "txnbench: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "txnbench: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "txnbench: %v\n", err)
			}
			f.Close()
		}()
	}

	if *cleaner != "" && *cleaner != "sync" && *cleaner != "idle" {
		fmt.Fprintf(os.Stderr, "txnbench: unknown -cleaner %q (want sync or idle)\n", *cleaner)
		os.Exit(2)
	}
	opts := figures.Options{
		Scale: *scale, Txns: *txns, CleanerMode: *cleaner, CleanBatch: *cleanBatch,
		LogSegmentBytes: *logSeg, LogRetain: *logRetain,
		Scanners: *scanners, ScansEach: *scansEach,
	}

	type job struct {
		name string
		run  func() (fmt.Stringer, error)
	}
	jobs := map[string]job{
		"4": {"figure4", func() (fmt.Stringer, error) { return figures.Figure4(opts) }},
		"5": {"figure5", func() (fmt.Stringer, error) { return figures.Figure5(opts) }},
		"6": {"figure67", func() (fmt.Stringer, error) { return figures.Figure67(opts) }},
		"7": {"figure67", func() (fmt.Stringer, error) { return figures.Figure67(opts) }},
		"sync": {"sync", func() (fmt.Stringer, error) {
			return figures.AblationSync(opts)
		}},
		"cleaner": {"cleaner", func() (fmt.Stringer, error) {
			return figures.AblationCleaner(opts)
		}},
		"groupcommit": {"groupcommit", func() (fmt.Stringer, error) {
			return figures.AblationGroupCommit(opts)
		}},
		"commitbytes": {"commitbytes", func() (fmt.Stringer, error) {
			return figures.AblationCommitBytes(opts)
		}},
		"policy": {"policy", func() (fmt.Stringer, error) {
			return figures.AblationCleanerPolicy(opts)
		}},
		// The MPL sweep runs 30 full benchmarks, so it is not part of "all".
		"mpl": {"mpl", func() (fmt.Stringer, error) {
			return figures.FigureMPL(opts)
		}},
		// The device sweep runs the partitioned multi-spindle rigs to
		// MPL 256 per device count; not part of "all".
		"devices": {"devices", func() (fmt.Stringer, error) {
			devs, err := parseDevices(*devicesFlag)
			if err != nil {
				return nil, err
			}
			return figures.FigureDevices(opts, devs)
		}},
		// The traced sweep re-runs the three systems with the tracing and
		// metrics subsystem on; not part of "all" either.
		"bench": {"bench", func() (fmt.Stringer, error) {
			rep, err := figures.Bench(opts)
			if err != nil {
				return nil, err
			}
			if *metricsOut != "" {
				if err := writeJSON(*metricsOut, rep); err != nil {
					return nil, err
				}
			}
			if *traceOut != "" && rep.Tracer != nil {
				f, err := os.Create(*traceOut)
				if err != nil {
					return nil, err
				}
				if err := rep.Tracer.WriteChrome(f); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
			}
			return rep, nil
		}},
		// The mixed OLTP + long-scan sweep (MVCC snapshot reads vs locking
		// scans); not part of "all".
		"scan": {"scan", func() (fmt.Stringer, error) {
			rep, err := figures.Scan(opts)
			if err != nil {
				return nil, err
			}
			if *metricsOut != "" {
				if err := writeJSON(*metricsOut, rep); err != nil {
					return nil, err
				}
			}
			if *traceOut != "" && rep.Tracer != nil {
				f, err := os.Create(*traceOut)
				if err != nil {
					return nil, err
				}
				if err := rep.Tracer.WriteChrome(f); err != nil {
					f.Close()
					return nil, err
				}
				if err := f.Close(); err != nil {
					return nil, err
				}
			}
			return rep, nil
		}},
	}

	var order []string
	if *fig == "all" {
		order = []string{"4", "5", "6", "sync", "cleaner", "groupcommit", "commitbytes", "policy"}
	} else {
		if _, ok := jobs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "txnbench: unknown figure %q\n", *fig)
			flag.Usage()
			os.Exit(2)
		}
		order = []string{*fig}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i, key := range order {
		rep, err := jobs[key].run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "txnbench: %s: %v\n", jobs[key].name, err)
			os.Exit(1)
		}
		if *jsonOut {
			// One {"figure": name, "report": {...}} object per requested
			// figure, newline-separated (a JSON stream, jq-friendly).
			if err := enc.Encode(map[string]any{"figure": jobs[key].name, "report": rep}); err != nil {
				fmt.Fprintf(os.Stderr, "txnbench: %s: %v\n", jobs[key].name, err)
				os.Exit(1)
			}
			continue
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(rep.String())
	}
}

// parseDevices parses the -devices flag: a comma-separated list of positive
// device counts.
func parseDevices(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("txnbench: bad -devices entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("txnbench: -devices is empty")
	}
	return out, nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
