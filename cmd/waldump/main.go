// Command waldump prints a human-readable dump of a libtp write-ahead log:
// the checkpoint anchor, every segment's header, each 4KB block's CRC status
// and the records inside it, and the sidecar index entries. Because the
// simulated disk lives only in memory, waldump builds its own image: it runs
// a small TPC-B workload on one of the user-level systems and then dumps the
// log it produced. Small -segbytes values force rotation so the dump shows a
// multi-segment log; -checkpoint ends the run with a checkpoint so the
// anchor, the low-water mark, and segment truncation (or archival, with
// -retain) are visible too.
//
// Usage:
//
//	waldump                              # user-lfs, 50 txns, default segments
//	waldump -segbytes 4096 -txns 200     # many small segments
//	waldump -system user-ffs -checkpoint
//	waldump -segbytes 4096 -checkpoint -retain
//
// The run is deterministic: the same flags always produce the same dump.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/tpcb"
	"repro/internal/wal"
)

func main() {
	system := flag.String("system", "user-lfs", "system whose log to build and dump: user-lfs or user-ffs")
	txns := flag.Int("txns", 50, "transactions to run before dumping")
	scale := flag.Float64("scale", 0.01, "TPC-B scale factor for the workload")
	segBytes := flag.Int64("segbytes", 0, "WAL segment rotation threshold in payload bytes (0 = wal default)")
	retain := flag.Bool("retain", false, "archive dead segments at checkpoint instead of deleting them")
	checkpoint := flag.Bool("checkpoint", false, "checkpoint the log after the workload (shows truncation/archival)")
	flag.Parse()

	if *system != "user-lfs" && *system != "user-ffs" {
		fatal(fmt.Errorf("unknown -system %q (want user-lfs or user-ffs)", *system))
	}

	cfg := tpcb.ScaledConfig(*scale)
	rig, err := tpcb.BuildRig(tpcb.RigOptions{
		Kind:            *system,
		Config:          cfg,
		Costs:           sim.SpriteCosts(),
		ExpectedTxns:    *txns,
		LogSegmentBytes: *segBytes,
		LogRetain:       *retain,
	})
	if err != nil {
		fatal(err)
	}
	res, err := rig.Run(cfg, *txns)
	if err != nil {
		fatal(err)
	}
	if *checkpoint {
		if err := rig.Env.Checkpoint(); err != nil {
			fatal(err)
		}
	}

	fmt.Printf("%s: %d txns in %.1fs simulated; dumping %s\n\n",
		res.System, res.Txns, res.Elapsed.Seconds(), rig.Env.LogPath())
	w := bufio.NewWriter(os.Stdout)
	if err := wal.Dump(w, rig.FS, rig.Env.LogPath()); err != nil {
		w.Flush()
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "waldump: %v\n", err)
	os.Exit(1)
}
