// Command tpcb runs the modified TPC-B benchmark (§5.1 of the paper) on one
// of the three measured configurations and prints the transaction rate plus
// the underlying file system, cleaner, lock, and log statistics.
//
// Usage:
//
//	tpcb -system kernel-lfs -scale 0.05 -txns 5000
//	tpcb -system user-ffs
//	tpcb -system user-lfs -groupcommit 8 -fastsync
//	tpcb -system user-lfs -mpl 8 -groupcommit 8
//	tpcb -system kernel-lfs -policy greedy
//	tpcb -system kernel-lfs -cleaner idle -cleanbatch 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/tpcb"
)

func main() {
	system := flag.String("system", "kernel-lfs", "configuration: user-ffs, user-lfs, kernel-lfs")
	scale := flag.Float64("scale", 0.05, "TPC-B scale factor (1.0 = 1,000,000 accounts)")
	txns := flag.Int("txns", 5000, "transactions to run")
	mpl := flag.Int("mpl", 1, "multiprogramming level (concurrent simulated clients)")
	groupCommit := flag.Int("groupcommit", 1, "commit batch size")
	policy := flag.String("policy", "cost-benefit", "LFS cleaner policy: cost-benefit or greedy")
	cleaner := flag.String("cleaner", "sync", "LFS cleaning discipline: sync (on the critical path) or idle (overlapped with foreground idle windows)")
	cleanBatch := flag.Int("cleanbatch", 0, "victims per batched cleaning pass (0 = LFS default)")
	idleTrigger := flag.Int("idletrigger", 0, "free segments at which idle cleaning starts (0 = LFS default)")
	fastSync := flag.Bool("fastsync", false, "model fast user-level synchronization (no test-and-set penalty)")
	flag.Parse()

	if *cleaner != "sync" && *cleaner != "idle" {
		fatal(fmt.Errorf("unknown -cleaner %q (want sync or idle)", *cleaner))
	}

	costs := sim.SpriteCosts()
	if *fastSync {
		costs = sim.FastSyncCosts()
	}
	pol := lfs.CostBenefit
	if *policy == "greedy" {
		pol = lfs.Greedy
	}
	cfg := tpcb.ScaledConfig(*scale)
	fmt.Printf("database: %d accounts, %d tellers, %d branches; %d transactions\n",
		cfg.Accounts, cfg.Tellers, cfg.Branches, *txns)

	rig, err := tpcb.BuildRig(tpcb.RigOptions{
		Kind:             *system,
		Config:           cfg,
		Costs:            costs,
		GroupCommit:      *groupCommit,
		Policy:           pol,
		ExpectedTxns:     *txns,
		CleanerMode:      *cleaner,
		CleanBatch:       *cleanBatch,
		IdleCleanTrigger: *idleTrigger,
	})
	if err != nil {
		fatal(err)
	}
	var res tpcb.Result
	if *mpl > 1 {
		res, err = rig.RunMPL(cfg, *txns, *mpl)
	} else {
		res, err = rig.Run(cfg, *txns)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Println(res)

	st := rig.Dev.Stats()
	fmt.Printf("\ndisk: %d read ops (%d blocks), %d write ops (%d blocks), busy %v, queued %v\n",
		st.Reads, st.BlocksRead, st.Writes, st.BlocksWrit, st.BusyTime, st.QueueTime)
	if rig.LFS != nil {
		fst := rig.LFS.Stats()
		fmt.Printf("lfs: %d partial segments, %d blocks logged, %d checkpoints\n",
			fst.PartialSegments, fst.BlocksLogged, fst.Checkpoints)
		cl := fst.Cleaner
		fmt.Printf("cleaner: %d segments cleaned in %d passes, %d blocks copied, %d dead, busy %v (%.1f%% of elapsed)\n",
			cl.SegmentsCleaned, cl.Runs, cl.BlocksCopied, cl.BlocksDead,
			cl.BusyTime, float64(cl.BusyTime)/float64(res.Elapsed)*100)
		if cl.OverlapTime > 0 || cl.StallTime > 0 {
			fmt.Printf("cleaner: %v overlapped with idle windows, %v stalled the workload (%.1f%% of elapsed)\n",
				cl.OverlapTime, cl.StallTime, float64(cl.StallTime)/float64(res.Elapsed)*100)
		}
		if cl.HotBlocks > 0 || cl.ColdBlocks > 0 {
			fmt.Printf("cleaner: %d hot / %d cold blocks relocated, write amplification %.2f×\n",
				cl.HotBlocks, cl.ColdBlocks, fst.WriteAmplification())
		}
	}
	if rig.Env != nil {
		ws := rig.Env.LogStats()
		printLockStats(rig)
		fmt.Printf("wal: %d records, %d bytes, %d forces, %d group-absorbed commits\n",
			ws.Records, ws.BytesLogged, ws.Forces, ws.GroupCommits)
	}
	if rig.Core != nil {
		cs := rig.Core.Stats()
		fmt.Printf("embedded: %d committed, %d aborted, %d commit flushes, %d pages (%d bytes) forced\n",
			cs.Committed, cs.Aborted, cs.CommitFlush, cs.PagesFlushed, cs.BytesFlushed)
		printLockStats(rig)
	}
}

func printLockStats(rig *tpcb.Rig) {
	ls := rig.LockStats()
	fmt.Printf("locks: %d acquired, %d waits (%v blocked), %d deadlocks (%d aborts)\n",
		ls.Acquired, ls.Waited, ls.BlockedTime, ls.Deadlocks, ls.DeadlockAborts)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcb: %v\n", err)
	os.Exit(1)
}
