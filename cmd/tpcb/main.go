// Command tpcb runs the modified TPC-B benchmark (§5.1 of the paper) on one
// of the three measured configurations and prints the transaction rate plus
// the underlying file system, cleaner, lock, and log statistics, and a
// per-proc breakdown of where simulated time went.
//
// Usage:
//
//	tpcb -system kernel-lfs -scale 0.05 -txns 5000
//	tpcb -system user-ffs
//	tpcb -system user-lfs -groupcommit 8 -fastsync
//	tpcb -system user-lfs -mpl 8 -groupcommit 8
//	tpcb -system kernel-lfs -policy greedy
//	tpcb -system kernel-lfs -cleaner idle -cleanbatch 8
//	tpcb -system kernel-lfs -mpl 8 -trace trace.json -metrics metrics.json
//	tpcb -system kernel-lfs -mpl 64 -cpuprofile cpu.pprof -wallstats
//
// -trace writes a Chrome trace-event file (load it at ui.perfetto.dev);
// -metrics writes the full snapshot (result, stats sections, attribution,
// metrics registry) as JSON. Both are byte-identical across runs with the
// same flags: the simulation is deterministic and the tracer never perturbs
// simulated time. -cpuprofile/-memprofile profile the simulator itself, and
// -wallstats adds the (inherently nondeterministic) wall-clock speed line to
// the report and the snapshot, so keep it off when diffing runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/lfs"
	"repro/internal/sim"
	"repro/internal/tpcb"
	"repro/internal/trace"
)

func main() {
	system := flag.String("system", "kernel-lfs", "configuration: user-ffs, user-lfs, kernel-lfs")
	scale := flag.Float64("scale", 0.05, "TPC-B scale factor (1.0 = 1,000,000 accounts)")
	txns := flag.Int("txns", 5000, "transactions to run")
	mpl := flag.Int("mpl", 1, "multiprogramming level (concurrent simulated clients)")
	groupCommit := flag.Int("groupcommit", 1, "commit batch size")
	policy := flag.String("policy", "cost-benefit", "LFS cleaner policy: cost-benefit or greedy")
	cleaner := flag.String("cleaner", "sync", "LFS cleaning discipline: sync (on the critical path) or idle (overlapped with foreground idle windows)")
	cleanBatch := flag.Int("cleanbatch", 0, "victims per batched cleaning pass (0 = LFS default)")
	idleTrigger := flag.Int("idletrigger", 0, "free segments at which idle cleaning starts (0 = LFS default)")
	fastSync := flag.Bool("fastsync", false, "model fast user-level synchronization (no test-and-set penalty)")
	logSeg := flag.Int64("logseg", 0, "WAL segment rotation threshold in payload bytes (0 = wal default)")
	logRetain := flag.Bool("logretain", false, "archive dead WAL segments at checkpoint instead of deleting them")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file (open at ui.perfetto.dev)")
	metricsOut := flag.String("metrics", "", "write the metrics snapshot (result, stats, attribution, registry) as JSON")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile taken after the run (go tool pprof)")
	wallStats := flag.Bool("wallstats", false, "report simulator wall-clock speed (wall ns, dispatches, events/s); nondeterministic, so off by default")
	devices := flag.Int("devices", 1, "number of disk devices (1 = the classic single spindle)")
	layout := flag.String("layout", "stripe", "multi-device layout: stripe (one file system over a striped array) or partition (per-device file systems and logs with cross-shard two-phase commit; user-level systems only)")
	stripe := flag.Int("stripe", 8, "stripe unit in blocks for -layout stripe")
	flag.Parse()

	if *cleaner != "sync" && *cleaner != "idle" {
		fatal(fmt.Errorf("unknown -cleaner %q (want sync or idle)", *cleaner))
	}

	costs := sim.SpriteCosts()
	if *fastSync {
		costs = sim.FastSyncCosts()
	}
	pol := lfs.CostBenefit
	if *policy == "greedy" {
		pol = lfs.Greedy
	}
	cfg := tpcb.ScaledConfig(*scale)
	if *devices > 1 && *layout == "partition" {
		// Every shard needs at least one row of each relation.
		cfg.Tellers = max(cfg.Tellers, int64(*devices))
		cfg.Branches = max(cfg.Branches, int64(*devices))
	}
	fmt.Printf("database: %d accounts, %d tellers, %d branches; %d transactions\n",
		cfg.Accounts, cfg.Tellers, cfg.Branches, *txns)

	rig, err := tpcb.BuildRig(tpcb.RigOptions{
		Kind:             *system,
		Config:           cfg,
		Costs:            costs,
		GroupCommit:      *groupCommit,
		Policy:           pol,
		ExpectedTxns:     *txns,
		CleanerMode:      *cleaner,
		CleanBatch:       *cleanBatch,
		IdleCleanTrigger: *idleTrigger,
		LogSegmentBytes:  *logSeg,
		LogRetain:        *logRetain,
		Trace:            true,
		Devices:          *devices,
		Layout:           *layout,
		StripeBlocks:     *stripe,
	})
	if err != nil {
		fatal(err)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	var res tpcb.Result
	start := sim.WallNow()
	if *mpl > 1 {
		res, err = rig.RunMPL(cfg, *txns, *mpl)
	} else {
		res, err = rig.Run(cfg, *txns)
	}
	wall := sim.WallNow().Sub(start)
	if err != nil {
		fatal(err)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	snap := tpcb.CollectSnapshot(rig, res, rig.Tracer)
	if *wallStats {
		ws := &trace.WallStats{WallNS: wall.Nanoseconds(), Dispatches: res.Dispatches}
		if secs := wall.Seconds(); secs > 0 {
			ws.EventsPerSec = float64(res.Dispatches) / secs
		}
		snap.Wall = ws
	}
	fmt.Print(snap.Render())

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rig.Tracer.WriteChrome(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\ntrace: %d events → %s\n", rig.Tracer.EventCount(), *traceOut)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := snap.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics: %s\n", *metricsOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tpcb: %v\n", err)
	os.Exit(1)
}
