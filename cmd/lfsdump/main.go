// Command lfsdump inspects the on-disk structure of the log-structured file
// system. Because devices in this reproduction are simulated, the tool
// builds a demonstration image, applies a configurable amount of churn
// (writes, overwrites, deletions — enough to exercise the cleaner), then
// dumps the superblock, log position, segment usage table, inode map, and
// cleaner statistics, and finally audits the usage accounting and verifies
// crash recovery by remounting.
//
// Usage:
//
//	lfsdump                 # default churn
//	lfsdump -files 40 -rounds 20 -size 65536
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func main() {
	files := flag.Int("files", 20, "number of files to churn")
	rounds := flag.Int("rounds", 10, "overwrite rounds")
	size := flag.Int("size", 32*1024, "file size in bytes")
	mb := flag.Int64("disk-mb", 32, "simulated disk size in MB")
	save := flag.String("save", "", "save the resulting device image to this file")
	load := flag.String("load", "", "load a device image instead of generating churn")
	flag.Parse()

	clk := sim.NewClock()
	model := sim.RZ55Model()
	model.NumBlocks = *mb * 1024 * 1024 / int64(model.BlockSize)

	if *load != "" {
		inspectImage(*load, model, clk)
		return
	}

	dev := disk.New(model, clk)
	fsys, err := lfs.Format(dev, clk, lfs.Options{})
	if err != nil {
		fatal(err)
	}

	// Churn: create, overwrite, and delete files so the image shows live
	// and dead blocks, partial segments, and cleaner activity.
	buf := make([]byte, *size)
	for r := 0; r < *rounds; r++ {
		for i := 0; i < *files; i++ {
			for j := range buf {
				buf[j] = byte(r + i + j)
			}
			path := fmt.Sprintf("/churn%02d", i)
			f, err := fsys.Open(path)
			if err != nil {
				f, err = fsys.Create(path)
			}
			if err != nil {
				fatal(err)
			}
			if _, err := f.WriteAt(buf, 0); err != nil {
				fatal(err)
			}
			f.Close()
		}
		if r%3 == 2 {
			// Delete a file to exercise deletion records.
			_ = fsys.Remove(fmt.Sprintf("/churn%02d", r%*files))
		}
		if err := fsys.Sync(); err != nil {
			fatal(err)
		}
	}

	if err := fsys.Dump(os.Stdout); err != nil {
		fatal(err)
	}

	maintained, actual, diff, err := fsys.AuditUsage()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nusage audit: maintained=%d actual=%d divergent-segments=%d\n", maintained, actual, len(diff))
	if len(diff) > 0 {
		fmt.Printf("  DIVERGENCE: %v\n", diff)
		os.Exit(1)
	}

	// Crash-recovery check: remount from the device and re-audit.
	fs2, err := lfs.Mount(dev, clk, lfs.Options{})
	if err != nil {
		fatal(fmt.Errorf("remount: %w", err))
	}
	m2, a2, d2, err := fs2.AuditUsage()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("after remount: maintained=%d actual=%d divergent-segments=%d\n", m2, a2, len(d2))
	rep, err := fs2.Fsck()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fsck: %d files, %d dirs, %d blocks, %d problems\n", rep.Files, rep.Dirs, rep.Blocks, len(rep.Problems))
	for _, pb := range rep.Problems {
		fmt.Printf("  PROBLEM: %s\n", pb)
	}
	fmt.Printf("simulated elapsed time: %v\n", clk.Now())

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		if err := dev.SaveImage(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("image saved to %s\n", *save)
	}
}

// inspectImage mounts and dumps a previously saved device image.
func inspectImage(path string, model sim.DiskModel, clk *sim.Clock) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	dev, err := disk.LoadImage(model, clk, f)
	if err != nil {
		fatal(err)
	}
	fsys, err := lfs.Mount(dev, clk, lfs.Options{})
	if err != nil {
		fatal(err)
	}
	if err := fsys.Dump(os.Stdout); err != nil {
		fatal(err)
	}
	m, a, diff, err := fsys.AuditUsage()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nusage audit: maintained=%d actual=%d divergent-segments=%d\n", m, a, len(diff))
	rep, err := fsys.Fsck()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fsck: %d files, %d dirs, %d blocks, %d problems\n", rep.Files, rep.Dirs, rep.Blocks, len(rep.Problems))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lfsdump: %v\n", err)
	os.Exit(1)
}
