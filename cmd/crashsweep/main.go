// Command crashsweep runs the deterministic crash-point fault-injection
// sweep over the three TPC-B transaction systems: a golden run counts the
// simulated disk's write operations, then each sampled crash point replays
// the workload, kills the device mid-write (tearing the crashing multi-block
// transfer unless -torn=false), and drives the system's recovery path —
// LFS roll-forward for kernel-lfs, WAL redo/undo on top of file-system
// recovery for user-lfs and user-ffs. Every point must come back with all
// acknowledged transactions durable, no partial transaction visible, a clean
// fsck, and the TPC-B balance invariants intact.
//
// Usage:
//
//	crashsweep                          # all three systems, defaults
//	crashsweep -system kernel-lfs -points 600 -txns 300
//	crashsweep -seed 42 -torn=false
//	crashsweep -json                    # machine-readable reports
//
// The sweep is deterministic: the same flags always produce byte-identical
// output. Exits non-zero if any crash point fails verification.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/crashsweep"
)

func main() {
	system := flag.String("system", "all", "system to sweep: kernel-lfs, user-lfs, user-ffs, or all")
	seed := flag.Uint64("seed", 1, "seed for the workload and torn-write prefixes")
	points := flag.Int("points", 500, "max crash points to sample (0 = every write op)")
	txns := flag.Int("txns", 250, "transactions in the golden run")
	torn := flag.Bool("torn", true, "tear the crashing multi-block write (persist a prefix)")
	scale := flag.Float64("diskscale", 0.7, "disk size scale (smaller exercises the cleaner)")
	logSeg := flag.Int64("logseg", 0, "WAL segment rotation threshold in payload bytes for the user-level systems (0 = wal default; small values put crash points on rotation and truncation)")
	jsonOut := flag.Bool("json", false, "emit each report as a JSON object instead of a table")
	devices := flag.Int("devices", 1, "number of disk devices (1 = the classic single spindle)")
	layout := flag.String("layout", "stripe", "multi-device layout: stripe or partition (partition sweeps only the user-level systems)")
	stripe := flag.Int("stripe", 8, "stripe unit in blocks for -layout stripe")
	snapshots := flag.Int("snapshots", 0, "open a read-only MVCC snapshot every Nth transaction and hold it across the next ones (0 = off)")
	flag.Parse()

	systems := []string{"kernel-lfs", "user-lfs", "user-ffs"}
	if *devices > 1 && *layout == "partition" {
		// The partitioned layout runs one transaction environment per
		// device; the kernel-embedded system has no such split.
		systems = []string{"user-lfs", "user-ffs"}
	}
	if *system != "all" {
		systems = []string{*system}
	}
	failed := false
	for _, sys := range systems {
		rep, err := crashsweep.Run(crashsweep.Options{
			System:          sys,
			Txns:            *txns,
			Seed:            *seed,
			Torn:            *torn,
			MaxPoints:       *points,
			DiskScale:       *scale,
			LogSegmentBytes: *logSeg,
			Devices:         *devices,
			Layout:          *layout,
			StripeBlocks:    *stripe,
			Snapshots:       *snapshots,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashsweep: %s: %v\n", sys, err)
			os.Exit(1)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "crashsweep: %v\n", err)
				os.Exit(1)
			}
		} else {
			fmt.Print(rep)
		}
		if !rep.OK() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
