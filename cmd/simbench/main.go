// Command simbench measures the wall-clock speed of the discrete-event core
// itself and records the results as BENCH_simcore.json, the artifact CI
// uploads so the simulator's events/sec trajectory is visible PR over PR.
//
// It runs the same scenarios as the go-test benchmarks in internal/tpcb
// (BenchmarkSimCoreTPCB): the TPC-B workload at MPL 8, 64, and 256, traced
// and untraced, on the kernel-embedded system, plus the user-level LFS
// system at MPL 64 where commit-wait parking exercises the WaitQueue. The
// simulated outcome of every scenario is deterministic; only the wall_ns and
// events_per_sec fields vary with the machine, which is the point — they
// measure the simulator, not the simulated system.
//
// Usage:
//
//	simbench                          # all scenarios → BENCH_simcore.json
//	simbench -out bench.json -reps 3  # best-of-3 per scenario
//	simbench -short                   # skip the slow MPL=256 scenarios
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/tpcb"
)

// scenario is one measured configuration.
type scenario struct {
	Name   string `json:"name"`
	System string `json:"system"`
	MPL    int    `json:"mpl"`
	Traced bool   `json:"traced"`

	Txns         int     `json:"txns"`
	SimulatedNS  int64   `json:"simulated_ns"`
	WallNS       int64   `json:"wall_ns"`
	Dispatches   int64   `json:"dispatches"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// report is the BENCH_simcore.json document.
type report struct {
	Txns      int        `json:"txns"`
	Scale     float64    `json:"scale"`
	Reps      int        `json:"reps"`
	Scenarios []scenario `json:"scenarios"`
}

func main() {
	out := flag.String("out", "BENCH_simcore.json", "output file for the benchmark report")
	reps := flag.Int("reps", 1, "repetitions per scenario (best wall time is kept)")
	short := flag.Bool("short", false, "skip the slow MPL=256 scenarios")
	flag.Parse()

	type cfg struct {
		system string
		mpl    int
		traced bool
	}
	var cfgs []cfg
	for _, mpl := range []int{8, 64, 256} {
		if *short && mpl > 64 {
			continue
		}
		for _, traced := range []bool{false, true} {
			cfgs = append(cfgs, cfg{"kernel-lfs", mpl, traced})
		}
	}
	cfgs = append(cfgs, cfg{"user-lfs", 64, false})

	rep := report{Txns: tpcb.SimCoreBenchTxns, Scale: tpcb.SimCoreBenchScale, Reps: *reps}
	for _, c := range cfgs {
		s, err := measure(c.system, c.mpl, c.traced, *reps)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-34s %12d dispatches %10.3fs wall %12.0f events/s\n",
			s.Name, s.Dispatches, float64(s.WallNS)/1e9, s.EventsPerSec)
		rep.Scenarios = append(rep.Scenarios, s)
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d scenarios)\n", *out, len(rep.Scenarios))
}

// measure runs one scenario reps times and keeps the best (fastest wall
// time) repetition. Rig construction — the load phase — is excluded from the
// timed region, matching the go-test benchmarks.
func measure(system string, mpl int, traced bool, reps int) (scenario, error) {
	s := scenario{
		Name:   fmt.Sprintf("%s/mpl%d/traced=%v", system, mpl, traced),
		System: system,
		MPL:    mpl,
		Traced: traced,
		Txns:   tpcb.SimCoreBenchTxns,
	}
	for r := 0; r < reps; r++ {
		rig, cfg, err := tpcb.SimCoreBenchRig(system, mpl, traced)
		if err != nil {
			return s, fmt.Errorf("%s: %w", s.Name, err)
		}
		start := sim.WallNow()
		res, err := rig.RunMPL(cfg, tpcb.SimCoreBenchTxns, mpl)
		if err != nil {
			return s, fmt.Errorf("%s: %w", s.Name, err)
		}
		wall := sim.WallNow().Sub(start)
		if r == 0 || wall.Nanoseconds() < s.WallNS {
			s.SimulatedNS = res.Elapsed.Nanoseconds()
			s.WallNS = wall.Nanoseconds()
			s.Dispatches = res.Dispatches
			if secs := wall.Seconds(); secs > 0 {
				s.EventsPerSec = float64(res.Dispatches) / secs
			}
		}
	}
	return s, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
	os.Exit(1)
}
