// Command simlint statically enforces the simulator's invariants across the
// repository. Per-package determinism rules: no wall-clock time outside
// internal/sim (walltime), no global math/rand source (globalrand), no
// order-sensitive map iteration in simulation packages (mapiter), and no raw
// goroutines in simulation packages (rawgo). Whole-program rules over the
// shared call graph: no heap allocation reachable from //simlint:noalloc
// hot-path roots (noalloc) and no non-proc-context access to
// //simlint:tokenguarded state (tokenctx).
//
// Usage:
//
//	go run ./cmd/simlint [-json] ./...
//
// With -json, findings are emitted as a JSON array of
// {file, line, col, analyzer, message, suppression} objects (suppression
// marks findings about the //simlint:* annotations themselves, e.g. a
// missing justification) so CI can archive them next to the bench JSONs.
//
// It exits non-zero if any diagnostic is reported; CI runs it alongside the
// tier-1 build and tests. See DESIGN.md §7 for the annotation grammar and
// the dispatch-resolution rules.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/simlint"
)

// finding is one diagnostic in the machine-readable output.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Suppression marks findings about a //simlint:* annotation itself
	// (e.g. a suppression written without a justification) rather than a
	// violation of the underlying rule.
	Suppression bool `json:"suppression"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON on stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-json] [packages]\n\nEnforces the determinism invariants (walltime, globalrand, mapiter, rawgo)\nand the call-graph invariants (noalloc, tokenctx).\nPackages default to ./...\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	var findings []finding
	add := func(pkg *analysis.Package, name string, d analysis.Diagnostic) {
		p := pkg.Fset.Position(d.Pos)
		findings = append(findings, finding{
			File:        p.Filename,
			Line:        p.Line,
			Col:         p.Column,
			Analyzer:    name,
			Message:     d.Message,
			Suppression: strings.Contains(d.Message, "suppression requires"),
		})
	}

	for _, pkg := range pkgs {
		for _, check := range simlint.Suite() {
			if !check.Applies(pkg.Types.Path()) {
				continue
			}
			check := check
			pkg := pkg
			pass := &analysis.Pass{
				Analyzer:  check.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { add(pkg, check.Analyzer.Name, d) },
			}
			if _, err := check.Analyzer.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s on %s: %v\n", check.Analyzer.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}

	// Whole-program analyzers run once over the call graph of everything
	// loaded.
	if len(pkgs) > 0 {
		prog := callgraph.Build(pkgs)
		for _, ga := range simlint.GlobalSuite() {
			for _, d := range ga.Run(prog) {
				p := prog.Fset.Position(d.Pos)
				findings = append(findings, finding{
					File:        p.Filename,
					Line:        p.Line,
					Col:         p.Column,
					Analyzer:    ga.Name,
					Message:     d.Message,
					Suppression: strings.Contains(d.Message, "suppression requires"),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d violation(s)\n", len(findings))
		os.Exit(1)
	}
}
