// Command simlint statically enforces the simulator's determinism
// invariants across the repository: no wall-clock time outside internal/sim
// (walltime), no global math/rand source (globalrand), no order-sensitive
// map iteration in simulation packages (mapiter), and no raw goroutines in
// simulation packages (rawgo).
//
// Usage:
//
//	go run ./cmd/simlint ./...
//
// It exits non-zero if any diagnostic is reported; CI runs it alongside the
// tier-1 build and tests. See DESIGN.md, "Determinism invariants", for the
// rules and the //simlint:ordered escape hatch.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/simlint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [packages]\n\nEnforces the determinism invariants (walltime, globalrand, mapiter, rawgo).\nPackages default to ./...\n")
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}

	type finding struct {
		pos      string
		line     int
		analyzer string
		msg      string
	}
	var findings []finding
	for _, pkg := range pkgs {
		for _, check := range simlint.Suite() {
			if !check.Applies(pkg.Types.Path()) {
				continue
			}
			check := check
			pass := &analysis.Pass{
				Analyzer:  check.Analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					p := pkg.Fset.Position(d.Pos)
					findings = append(findings, finding{
						pos:      p.String(),
						line:     p.Line,
						analyzer: check.Analyzer.Name,
						msg:      d.Message,
					})
				},
			}
			if _, err := check.Analyzer.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s on %s: %v\n", check.Analyzer.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		fmt.Printf("%s: %s (%s)\n", f.pos, f.msg, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d determinism violation(s)\n", len(findings))
		os.Exit(1)
	}
}
