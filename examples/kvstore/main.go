// KVStore: a crash-recoverable key-value store on the USER-LEVEL transaction
// system (Figure 2 of the paper) — LIBTP-style write-ahead logging and
// two-phase locking over a B-tree, running on the log-structured file
// system. This is the architecture the paper compares the embedded manager
// against: note the explicit log, the user-level buffer pool, and the
// recovery pass (RecoverPaths) that the embedded model makes unnecessary.
//
// Run: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/libtp"
	"repro/internal/sim"
)

// Store is a tiny transactional KV API over LIBTP.
type Store struct {
	env *libtp.Env
	db  *libtp.DB
}

// Open creates or opens the store.
func Open(env *libtp.Env) (*Store, error) {
	db, err := env.OpenDB("/kv.db")
	if err != nil {
		return nil, err
	}
	// Initialize the tree if the database is empty.
	txn := env.Begin()
	st := txn.Store(db)
	if n, err := st.NumPages(); err != nil {
		txn.Abort()
		return nil, err
	} else if n == 0 {
		if _, err := btree.Create(st); err != nil {
			txn.Abort()
			return nil, err
		}
	}
	if err := txn.Commit(); err != nil {
		return nil, err
	}
	return &Store{env: env, db: db}, nil
}

// Put stores key=value in its own transaction.
func (s *Store) Put(key, value string) error {
	txn := s.env.Begin()
	t, err := btree.Open(txn.Store(s.db))
	if err != nil {
		txn.Abort()
		return err
	}
	if err := t.Put([]byte(key), []byte(value)); err != nil {
		txn.Abort()
		return err
	}
	return txn.Commit()
}

// Get reads a key in its own transaction.
func (s *Store) Get(key string) (string, error) {
	txn := s.env.Begin()
	defer txn.Commit()
	t, err := btree.Open(txn.Store(s.db))
	if err != nil {
		return "", err
	}
	v, err := t.Get([]byte(key))
	if err != nil {
		return "", err
	}
	return string(v), nil
}

func main() {
	clock := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clock)
	fsys, err := lfs.Format(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	env, err := libtp.NewEnv(fsys, clock, libtp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	store, err := Open(env)
	if err != nil {
		log.Fatal(err)
	}

	// Commit some durable writes.
	for i := 0; i < 20; i++ {
		if err := store.Put(fmt.Sprintf("user:%02d", i), fmt.Sprintf("account-%d", i*7)); err != nil {
			log.Fatal(err)
		}
	}

	// Start a transaction and CRASH before it commits: its updates are in
	// the write-ahead log (forced by an eviction or not at all), but no
	// commit record exists — recovery must roll it back.
	loser := env.Begin()
	t, err := btree.Open(loser.Store(store.db))
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Put([]byte("user:05"), []byte("STOLEN")); err != nil {
		log.Fatal(err)
	}
	// (no Commit — the machine dies here)

	// Crash: remount the file system and run LIBTP recovery.
	fs2, err := lfs.Mount(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	env2, report, err := libtp.RecoverPaths(fs2, clock, libtp.Options{}, []string{"/kv.db"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d winners redone, %d losers undone\n", report.Winners, report.Losers)

	store2, err := Open(env2)
	if err != nil {
		log.Fatal(err)
	}
	v, err := store2.Get("user:05")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:05 after crash = %q (uncommitted update rolled back)\n", v)
	v, err = store2.Get("user:19")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:19 after crash = %q (committed data preserved)\n", v)
	fmt.Printf("simulated elapsed time: %v\n", clock.Now())
}
