// Quickstart: transaction-protected files on the log-structured file system.
//
// This example shows the paper's embedded model end to end: mark a file
// transaction-protected, use the ordinary read/write interface inside
// txn_begin/txn_commit/txn_abort, and observe that
//
//   - an aborted transaction's writes vanish (the no-overwrite log keeps
//     the before-images, no undo log needed), and
//   - a committed transaction survives a crash with no separate database
//     recovery — remounting the file system is the only recovery step.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/sim"
)

func main() {
	// A simulated 32 MB disk with RZ55-like timing, and a fresh LFS.
	clock := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clock)
	fsys, err := lfs.Format(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The embedded transaction manager: the paper's kernel extension.
	tm := core.New(fsys, clock, core.Options{})

	// Create a file and flip its transaction-protection attribute on.
	f, err := tm.Create("/ledger")
	if err != nil {
		log.Fatal(err)
	}
	proc := tm.NewProcess()
	if _, err := proc.Write(f, []byte("balance=100"), 0); err != nil {
		log.Fatal(err)
	}
	if err := tm.Protect("/ledger"); err != nil {
		log.Fatal(err)
	}
	if err := fsys.Sync(); err != nil {
		log.Fatal(err)
	}

	// A transaction that aborts: its write disappears.
	must(proc.TxnBegin())
	if _, err := proc.Write(f, []byte("balance=999"), 0); err != nil {
		log.Fatal(err)
	}
	must(proc.TxnAbort())
	buf := make([]byte, 11)
	if _, err := proc.Read(f, buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after abort:  %s\n", buf) // balance=100

	// A transaction that commits: durable at TxnCommit, no fsync needed.
	must(proc.TxnBegin())
	if _, err := proc.Write(f, []byte("balance=250"), 0); err != nil {
		log.Fatal(err)
	}
	must(proc.TxnCommit())

	// Crash: throw away all in-memory state and remount from the device.
	recovered, err := lfs.Mount(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	g, err := recovered.Open("/ledger")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash:  %s\n", buf) // balance=250
	fmt.Printf("simulated elapsed time: %v\n", clock.Now())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
