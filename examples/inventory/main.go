// Inventory: a warehouse stock tracker using the LINEAR-HASHING access
// method (the third of the db(3) trio the paper's record layer offers) on
// transaction-protected files. Restocks and orders run as transactions on
// the embedded manager; an order that would oversell aborts and leaves no
// trace — including in the hash index's overflow pages and bucket splits.
//
// Run: go run ./examples/inventory
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/hashidx"
	"repro/internal/lfs"
	"repro/internal/sim"
)

var errOversell = errors.New("insufficient stock")

func qty(n int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(n))
	return b
}

func num(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

func main() {
	clock := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clock)
	fsys, err := lfs.Format(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tm := core.New(fsys, clock, core.Options{})
	proc := tm.NewProcess()

	// Create the inventory table (offline), then protect it.
	f, err := tm.Create("/inventory")
	if err != nil {
		log.Fatal(err)
	}
	table, err := hashidx.Create(core.NewStore(proc, f))
	if err != nil {
		log.Fatal(err)
	}
	skus := []string{"widget", "gadget", "sprocket", "flange", "grommet"}
	for _, sku := range skus {
		if err := table.Put([]byte(sku), qty(0)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tm.Protect("/inventory"); err != nil {
		log.Fatal(err)
	}
	if err := fsys.Sync(); err != nil {
		log.Fatal(err)
	}

	// restock and order are transactions.
	restock := func(sku string, n int64) error {
		if err := proc.TxnBegin(); err != nil {
			return err
		}
		t, err := hashidx.Open(core.NewStore(proc, f))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		cur, err := t.Get([]byte(sku))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		if err := t.Put([]byte(sku), qty(num(cur)+n)); err != nil {
			proc.TxnAbort()
			return err
		}
		return proc.TxnCommit()
	}
	order := func(sku string, n int64) error {
		if err := proc.TxnBegin(); err != nil {
			return err
		}
		t, err := hashidx.Open(core.NewStore(proc, f))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		cur, err := t.Get([]byte(sku))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		if num(cur) < n {
			proc.TxnAbort()
			return errOversell
		}
		if err := t.Put([]byte(sku), qty(num(cur)-n)); err != nil {
			proc.TxnAbort()
			return err
		}
		return proc.TxnCommit()
	}

	rng := sim.NewRNG(7)
	restocks, orders, oversells := 0, 0, 0
	expect := map[string]int64{}
	for i := 0; i < 400; i++ {
		sku := skus[rng.Intn(len(skus))]
		n := 1 + rng.Int63n(20)
		if rng.Intn(2) == 0 {
			if err := restock(sku, n); err != nil {
				log.Fatal(err)
			}
			expect[sku] += n
			restocks++
		} else {
			switch err := order(sku, n); {
			case err == nil:
				expect[sku] -= n
				orders++
			case errors.Is(err, errOversell):
				oversells++
			default:
				log.Fatal(err)
			}
		}
	}

	// Crash, remount, verify every SKU.
	fs2, err := lfs.Mount(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tm2 := core.New(fs2, clock, core.Options{})
	proc2 := tm2.NewProcess()
	f2, err := tm2.Open("/inventory")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := hashidx.Open(core.NewStore(proc2, f2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d restocks, %d orders filled, %d rejected (insufficient stock)\n", restocks, orders, oversells)
	for _, sku := range skus {
		v, err := t2.Get([]byte(sku))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s stock=%4d (want %4d)\n", sku, num(v), expect[sku])
		if num(v) != expect[sku] {
			log.Fatal("stock mismatch after crash!")
		}
	}
	fmt.Println("all stock levels survived the crash ✓")
}
