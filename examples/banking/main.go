// Banking: a miniature TPC-B-style bank on the embedded transaction
// manager, using the B-tree and recno access methods straight on
// transaction-protected files — the paper's motivating scenario where an
// ordinary application gains transactions from the file system without a
// database server.
//
// The example runs a stream of transfers (some of which abort on
// insufficient funds), then proves the invariant: the sum of all balances
// never changes, and the history file holds exactly one record per
// committed transfer.
//
// Run: go run ./examples/banking
package main

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lfs"
	"repro/internal/recno"
	"repro/internal/sim"
)

const (
	numAccounts    = 500
	initialBalance = 1000
	transfers      = 300
)

func key(id int64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, uint64(id))
	return b
}

func val(amount int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(amount))
	return b
}

func amount(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

var errInsufficient = errors.New("insufficient funds")

func main() {
	clock := sim.NewClock()
	dev := disk.New(sim.SmallModel(), clock)
	fsys, err := lfs.Format(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tm := core.New(fsys, clock, core.Options{})
	proc := tm.NewProcess()

	// Load the accounts (offline, non-transactional), then protect.
	accounts, err := tm.Create("/accounts")
	if err != nil {
		log.Fatal(err)
	}
	tr, err := btree.Create(core.NewStore(proc, accounts))
	if err != nil {
		log.Fatal(err)
	}
	for id := int64(0); id < numAccounts; id++ {
		if err := tr.Put(key(id), val(initialBalance)); err != nil {
			log.Fatal(err)
		}
	}
	history, err := tm.Create("/history")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := recno.Create(core.NewStore(proc, history), 32); err != nil {
		log.Fatal(err)
	}
	for _, p := range []string{"/accounts", "/history"} {
		if err := tm.Protect(p); err != nil {
			log.Fatal(err)
		}
	}
	if err := fsys.Sync(); err != nil {
		log.Fatal(err)
	}

	// transfer moves money between two accounts inside one transaction.
	transfer := func(from, to, amt int64) error {
		if err := proc.TxnBegin(); err != nil {
			return err
		}
		t, err := btree.Open(core.NewStore(proc, accounts))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		src, err := t.Get(key(from))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		if amount(src) < amt {
			// Roll everything back: the read locks release, nothing
			// changes on disk.
			proc.TxnAbort()
			return errInsufficient
		}
		dst, err := t.Get(key(to))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		if err := t.Put(key(from), val(amount(src)-amt)); err != nil {
			proc.TxnAbort()
			return err
		}
		if err := t.Put(key(to), val(amount(dst)+amt)); err != nil {
			proc.TxnAbort()
			return err
		}
		h, err := recno.Open(core.NewStore(proc, history))
		if err != nil {
			proc.TxnAbort()
			return err
		}
		rec := make([]byte, 32)
		binary.LittleEndian.PutUint64(rec[0:], uint64(from))
		binary.LittleEndian.PutUint64(rec[8:], uint64(to))
		binary.LittleEndian.PutUint64(rec[16:], uint64(amt))
		if _, err := h.Append(rec); err != nil {
			proc.TxnAbort()
			return err
		}
		return proc.TxnCommit()
	}

	rng := sim.NewRNG(42)
	committed, aborted := 0, 0
	for i := 0; i < transfers; i++ {
		from := rng.Int63n(numAccounts)
		to := rng.Int63n(numAccounts - 1)
		if to >= from {
			to++ // distinct accounts
		}
		amt := rng.Int63n(2000) // sometimes exceeds the balance → abort
		switch err := transfer(from, to, amt); {
		case err == nil:
			committed++
		case errors.Is(err, errInsufficient):
			aborted++
		default:
			log.Fatal(err)
		}
	}

	// Verify the conservation invariant after a crash + remount.
	fs2, err := lfs.Mount(dev, clock, lfs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tm2 := core.New(fs2, clock, core.Options{})
	proc2 := tm2.NewProcess()
	acc2, err := tm2.Open("/accounts")
	if err != nil {
		log.Fatal(err)
	}
	t2, err := btree.Open(core.NewStore(proc2, acc2))
	if err != nil {
		log.Fatal(err)
	}
	c, err := t2.First()
	if err != nil {
		log.Fatal(err)
	}
	var total int64
	for c.Next() {
		total += amount(c.Value())
	}
	hist2, err := tm2.Open("/history")
	if err != nil {
		log.Fatal(err)
	}
	h2, err := recno.Open(core.NewStore(proc2, hist2))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transfers: %d committed, %d aborted (insufficient funds)\n", committed, aborted)
	fmt.Printf("history records after crash: %d (want %d)\n", h2.Count(), committed)
	fmt.Printf("total balance after crash:   %d (want %d)\n", total, int64(numAccounts*initialBalance))
	if total != numAccounts*initialBalance || h2.Count() != int64(committed) {
		log.Fatal("invariant violated!")
	}
	fmt.Println("conservation invariant holds across aborts and a crash ✓")
}
