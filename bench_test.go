// Package repro_test benches regenerate every result figure of the paper
// (Figures 4–7) plus the DESIGN.md ablations as Go benchmarks. Reported
// metrics are simulated quantities (the workloads run on a simulated RZ55
// disk): "TPS" is simulated transactions per simulated second, "sim-ms/op"
// is simulated elapsed milliseconds, and so on. Wall-clock ns/op only
// reflects how fast the simulation executes.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The full-scale reproduction (the paper's exact sizing) is reached with
// cmd/txnbench -scale 1.0 -txns 100000.
package repro_test

import (
	"testing"

	"repro/internal/figures"
)

// benchOpts keeps each benchmark iteration around a second of wall-clock
// time while exercising cache-miss, commit-force, and cleaner behaviour.
func benchOpts() figures.Options {
	return figures.Options{Scale: 0.01, Txns: 600}
}

// BenchmarkFigure4 regenerates Figure 4: TPC-B throughput of the user-level
// transaction manager on the read-optimized FS and on LFS, and of the
// kernel-embedded transaction manager on LFS.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.Figure4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.TPS, row.System+"-TPS")
			}
			b.ReportMetric(rep.Rows[1].TPS/rep.Rows[0].TPS, "lfs/ffs")
			b.ReportMetric(rep.Rows[2].TPS/rep.Rows[1].TPS, "kernel/user")
		}
	}
}

// BenchmarkFigure5 regenerates Figure 5: the non-transaction workloads on a
// normal kernel vs the transaction-enabled kernel.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.Figure5(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, row := range rep.Rows {
				b.ReportMetric(row.DeltaPct, row.Workload+"-overhead-%")
			}
		}
	}
}

// BenchmarkFigure6 regenerates Figure 6: the key-order SCAN after random
// updates, where the read-optimized layout wins.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.Figure67(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.FFSScan.Seconds()*1000, "ffs-scan-sim-ms")
			b.ReportMetric(rep.LFSScan.Seconds()*1000, "lfs-scan-sim-ms")
			b.ReportMetric(rep.ScanPenalty, "lfs/ffs-scan-ratio")
		}
	}
}

// BenchmarkFigure7 regenerates Figure 7: the total-elapsed-time crossover
// between the two file systems.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.Figure67(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.CrossoverTxns, "crossover-txns")
			b.ReportMetric(rep.CrossoverTime.Minutes(), "crossover-sim-min")
		}
	}
}

// BenchmarkAblationSync quantifies §5.1's synchronization-cost analysis.
func BenchmarkAblationSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.AblationSync(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.SlowUser, "user-TPS-no-TAS")
			b.ReportMetric(rep.FastUser, "user-TPS-fast-sync")
			b.ReportMetric(rep.SlowKernel, "kernel-TPS")
		}
	}
}

// BenchmarkAblationCleaner quantifies §5.4's kernel-vs-user-space cleaner.
func BenchmarkAblationCleaner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.AblationCleaner(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.TPSSync, "sync-cleaner-TPS")
			b.ReportMetric(rep.TPSIdle, "idle-cleaner-TPS")
			b.ReportMetric(rep.TPSBound, "no-stall-bound-TPS")
		}
	}
}

// BenchmarkAblationGroupCommit sweeps the §4.4 commit batch size.
func BenchmarkAblationGroupCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.AblationGroupCommit(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for j, batch := range rep.Batches {
				b.ReportMetric(float64(rep.Forces[j]), "forces-batch-"+itoa(batch))
			}
		}
	}
}

// BenchmarkAblationCommitBytes contrasts §4.3's whole-page commit flush with
// WAL delta logging.
func BenchmarkAblationCommitBytes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.AblationCommitBytes(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(rep.KernelBytesPerTxn, "kernel-B/txn")
			b.ReportMetric(rep.UserLogBytesPerTxn, "wal-B/txn")
		}
	}
}

// BenchmarkAblationCleanerPolicy compares greedy vs cost-benefit cleaning.
func BenchmarkAblationCleanerPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := figures.AblationCleanerPolicy(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for j, pol := range rep.Policies {
				b.ReportMetric(float64(rep.Copied[j]), pol+"-copied")
			}
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var digits []byte
	for v > 0 {
		digits = append([]byte{byte('0' + v%10)}, digits...)
		v /= 10
	}
	return string(digits)
}
